#!/usr/bin/env python
"""Scheduling lab: look inside the chaining-SP scheduler.

Reproduces the paper's worked example (Figures 3-5) interactively: builds
the mcf loop, slices the delinquent load, and prints each stage of the
Section 3.2 pipeline — the dependence graph with loop-carried edges, the
SCC partition, the critical/non-critical split around the spawn point, the
list-scheduled order, and the slack computation.

Run:  python examples/scheduling_lab.py
"""

from repro.analysis import CFG, CallGraph, DependenceGraph, RegionGraph
from repro.profiling import collect_profile
from repro.scheduling import (
    BasicScheduler,
    ChainingScheduler,
    nondegenerate_nodes,
    slice_sccs,
)
from repro.slicing import ContextSensitiveSlicer, restrict_to_region
from repro.workloads import make_workload


def main() -> None:
    workload = make_workload("mcf", scale="tiny")
    program = workload.build_program()
    profile = collect_profile(program, workload.build_heap)

    func = program.function("main")
    cfg = CFG(func)
    depgraphs = {"main": DependenceGraph(func, cfg,
                                         profile.load_latency_map(),
                                         profile.l1_latency)}
    callgraph = CallGraph(program, profile.indirect_targets)
    region_graph = RegionGraph(program, callgraph, profile.block_freq)

    # The delinquent load: u->potential (the paper's Figure 3).
    dg = depgraphs["main"]
    loads = sorted(profile.load_stats.items(),
                   key=lambda kv: kv[1].miss_cycles, reverse=True)
    load = dg.instr_of[loads[0][0]]
    print(f"delinquent load: {load}  "
          f"(avg latency {profile.average_load_latency(load.uid):.0f} "
          "cycles)")

    # -- slicing (Section 3.1) --------------------------------------------------
    slicer = ContextSensitiveSlicer(program, callgraph, depgraphs)
    program_slice = slicer.slice_load_address(load, "main")
    print(f"\nbackward slice of the address ({program_slice.size()} "
          "instructions):")
    for uid in sorted(program_slice.uids_in("main")):
        print(f"   {dg.instr_of[uid]}")

    region = region_graph.region_of_block(
        "main", dg.block_of[load.uid])
    region_slice = restrict_to_region(program_slice, region, region_graph,
                                      depgraphs)
    print(f"\nregion: {region.name} (trip count "
          f"{region.trip_count:.0f})")
    print("slice restricted to the region "
          f"({region_slice.size()} instructions):")
    for ins in region_slice.body:
        carried = [f"{dg.instr_of[e.src].op}->"
                   for e in dg.preds(ins.uid, kinds={'flow'})
                   if e.loop_carried]
        mark = "  <- loop-carried" if carried else ""
        print(f"   {ins}{mark}")

    # -- SCC partition (Section 3.2.1.2.1) --------------------------------------
    uids = region_slice.body_uids
    sccs = slice_sccs(dg, uids)
    nondeg = nondegenerate_nodes(sccs, dg)
    print("\nSCC partition (Figure 5a):")
    for comp in sccs:
        tag = "non-degenerate" if set(comp) & nondeg else "degenerate"
        print(f"   [{tag}] " + ", ".join(str(dg.instr_of[u].op)
                                         for u in comp))

    # -- chaining schedule (Figure 5b) -------------------------------------------
    chain = ChainingScheduler().schedule(region_slice)
    print(f"\nchaining schedule (rotation {chain.rotation}, "
          f"{'predicted' if chain.predicted else 'predicated'} spawn):")
    for ins in chain.critical:
        print(f"   {ins}")
    print("   --- spawn point (copy live-ins: "
          f"{', '.join(chain.live_ins)}) ---")
    for ins in chain.noncritical:
        print(f"   {ins}")
    print(f"\nheights: region={chain.height_region} "
          f"critical={chain.height_critical} slice={chain.height_slice}")
    print(f"slack_csp per iteration: {chain.slack_per_iteration:.1f}")
    print(f"available ILP of the slice: {chain.available_ilp:.2f}")

    basic = BasicScheduler().schedule(region_slice)
    print(f"slack_bsp per iteration: {basic.slack_per_iteration:.1f} "
          "(the region selector compares both and picks chaining here)")


if __name__ == "__main__":
    main()
