#!/usr/bin/env python
"""Visualise chaining SP: watch speculative threads relay through the
hardware contexts.

Adapts em3d (a pointer-chased node list — the spawn condition is
*predicted*, Section 3.2.1.1) and renders the hardware-context occupancy
as an ASCII Gantt chart: the main thread owns context 0 while a relay of
short chained threads cycles through contexts 1-3, each one prefetching
one iteration and spawning its successor.

Run:  python examples/chaining_visualizer.py
"""

from repro.profiling import collect_profile
from repro.sim import trace_run
from repro.tool import SSPPostPassTool
from repro.workloads import make_workload


def main() -> None:
    workload = make_workload("em3d", scale="tiny")
    program = workload.build_program()
    profile = collect_profile(program, workload.build_heap)
    result = SSPPostPassTool().adapt(program, profile)

    record = result.adapted.records[0]
    scheduled = record.scheduled
    print(f"slice: {record.kind} SP, "
          f"{'predicted' if scheduled.predicted else 'predicated'} spawn "
          f"condition, {len(scheduled.live_ins)} live-ins "
          f"({', '.join(scheduled.live_ins)})")
    if scheduled.guard is not None:
        print(f"chain termination: {scheduled.guard!r}")

    print("\nbaseline (no speculative threads):")
    base_stats, base_trace = trace_run(program, workload.build_heap(),
                                       spawning=False)
    print(base_trace.render_gantt(width=64))

    print("\nSSP-enhanced binary:")
    ssp_heap = workload.build_heap()
    ssp_stats, ssp_trace = trace_run(result.program, ssp_heap)
    workload.check_output(ssp_heap)
    print(ssp_trace.render_gantt(width=64))

    print(f"\nspeculative threads spawned: {ssp_trace.thread_count() - 1}")
    print(f"peak concurrent speculative threads: "
          f"{ssp_trace.max_concurrent_speculative()}")
    busy = ssp_trace.speculative_busy_cycles()
    print(f"speculative context busy cycles: {busy:,} "
          f"({busy / (3 * ssp_stats.cycles):.0%} of 3-context capacity)")
    print(f"\nspeedup: {base_stats.cycles:,} -> {ssp_stats.cycles:,} "
          f"cycles ({base_stats.cycles / ssp_stats.cycles:.2f}x)")


if __name__ == "__main__":
    main()
