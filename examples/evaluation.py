#!/usr/bin/env python
"""Reproduce the paper's full evaluation in one run.

Regenerates Table 1, Figure 2, Table 2, Figure 8, Figure 9, Figure 10 and
the Section 4.5 hand-vs-auto comparison, sharing simulations across
experiments.  At ``--scale small`` this takes well under a minute; pass
``--scale default`` for the larger configurations used in EXPERIMENTS.md.

Run:  python examples/evaluation.py [--scale small|default]
"""

import argparse
import time

from repro.experiments import ExperimentContext, run_all
from repro.runner import ResultCache, Runner


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small",
                        choices=("tiny", "small", "default"))
    parser.add_argument("--charts", action="store_true",
                        help="also render ASCII bar charts of Figures "
                             "2 and 8")
    parser.add_argument("--jobs", type=int, default=1,
                        help="simulate on N worker processes")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the .repro-cache/ result cache")
    args = parser.parse_args()

    start = time.time()
    cache = None if args.no_cache else ResultCache.from_environment()
    runner = Runner(jobs=args.jobs, cache=cache)
    context = ExperimentContext(args.scale, runner=runner)
    results = run_all(scale=args.scale, context=context)
    for result in results.values():
        print()
        print(result.format())
    if args.charts:
        from repro.experiments import render_bars
        for name in ("figure2", "figure8"):
            print()
            print(render_bars(results[name]))
    print(f"\n[runner] {runner.telemetry.summary()}")
    print(f"total wall time: {time.time() - start:.1f}s "
          f"(scale={args.scale})")


if __name__ == "__main__":
    main()
