#!/usr/bin/env python
"""Adapting *your own* kernel: build a program with the IR builder and let
the tool find and attack its delinquent loads.

The kernel here is a sparse matrix-vector product in CSR-like form with a
permuted column order — every ``x[col[j]]`` gather is a cache miss, the
classic irregular-access pattern SSP targets.

Run:  python examples/custom_workload.py
"""

import random

from repro.isa import FunctionBuilder, Heap, Program
from repro.profiling import collect_profile
from repro.sim import simulate
from repro.tool import SSPPostPassTool

ROWS = 400
NNZ_PER_ROW = 6
SEED = 42


def build_heap() -> Heap:
    """CSR arrays + a deliberately scattered x vector."""
    rng = random.Random(SEED)
    heap = Heap(1 << 24)
    ncols = ROWS * 4
    # x entries each on their own cache line (worst-case gather).
    x_cells = [heap.alloc(64, align=64) for _ in range(ncols)]
    for cell in x_cells:
        heap.store(cell, rng.randrange(1, 100))
    nnz = ROWS * NNZ_PER_ROW
    vals = heap.alloc_array(nnz, 8)
    cols = heap.alloc_array(nnz, 8)     # direct pointers to x cells
    for j in range(nnz):
        heap.store(vals + j * 8, rng.randrange(1, 10))
        heap.store(cols + j * 8, rng.choice(x_cells))
    out = heap.alloc(8)
    build_heap.layout = dict(vals=vals, cols=cols, nnz=nnz, out=out)
    return heap


def build_program(layout: dict) -> Program:
    prog = Program(entry="main")
    fb = FunctionBuilder(prog.add_function("main"))
    fb.mov_imm(0, dest="r110")                     # accumulator
    fb.mov_imm(layout["vals"], dest="r100")        # value cursor
    fb.mov_imm(layout["cols"], dest="r101")        # column cursor
    fb.mov_imm(layout["cols"] + layout["nnz"] * 8, dest="r102")
    fb.nop()                                       # trigger slot
    fb.label("spmv_loop")
    v = fb.load("r100", 0)
    xp = fb.load("r101", 0)                        # column pointer
    x = fb.load(xp, 0)                             # the delinquent gather
    term = fb.mul(v, x)
    fb.add("r110", term, dest="r110")
    fb.add("r100", imm=8, dest="r100")
    fb.add("r101", imm=8, dest="r101")
    p = fb.cmp("lt", "r101", "r102")
    fb.br_cond(p, "spmv_loop")
    o = fb.mov_imm(layout["out"])
    fb.store(o, "r110")
    fb.halt()
    return prog.finalize()


def main() -> None:
    heap = build_heap()
    layout = build_heap.layout
    program = build_program(layout)

    profile = collect_profile(program, build_heap)
    print(f"baseline in-order cycles: {profile.baseline_cycles:,}")

    result = SSPPostPassTool().adapt(program, profile)
    print(f"delinquent loads found: {result.delinquent_uids}")
    for decision in result.decisions:
        if decision.selected:
            print(f"selected: {decision.kind} SP in {decision.region_name} "
                  f"(slack/iter {decision.slack_per_iteration:.0f})")

    for model in ("inorder", "ooo"):
        base = simulate(program, build_heap(), model, spawning=False)
        ssp = simulate(result.program, build_heap(), model)
        print(f"{model:8s}: {base.cycles:>9,} -> {ssp.cycles:>9,} cycles "
              f"({base.cycles / ssp.cycles:.2f}x)")


if __name__ == "__main__":
    main()
