#!/usr/bin/env python
"""Quickstart: adapt the paper's mcf kernel for SSP, end to end.

Walks the full Figure 1 tool flow on the paper's running example
(the ``primal_bea_map`` arc scan of Figure 3):

1. build the workload (program + simulated heap),
2. profile it on the baseline in-order SMT model,
3. run the post-pass tool (delinquent loads -> slices -> schedule ->
   triggers -> SSP-enhanced binary),
4. simulate the adapted binary and compare.

Run:  python examples/quickstart.py
"""

from repro.profiling import collect_profile
from repro.sim import simulate
from repro.tool import SSPPostPassTool
from repro.workloads import make_workload


def main() -> None:
    # 1. The workload: a program in the research-Itanium IR plus a
    #    deterministic heap initialiser (so the same binary can run on
    #    fresh data many times).
    workload = make_workload("mcf", scale="small")
    program = workload.build_program()
    print(f"workload: {workload.name} — {workload.description}")
    print(f"program:  {program!r}")

    # 2. Profile: cache profile + block frequencies + dynamic call graph.
    profile = collect_profile(program, workload.build_heap)
    print(f"\nbaseline in-order cycles: {profile.baseline_cycles:,}")
    print(f"total miss cycles:        {profile.total_miss_cycles():,}")

    # 3. The post-pass tool.
    tool = SSPPostPassTool()
    result = tool.adapt(program, profile)
    print(f"\ndelinquent loads: {result.delinquent_uids}")
    row = result.table2_row()
    print(f"slices: {row['slices']:.0f} "
          f"(avg {row['avg_size']:.1f} instructions, "
          f"{row['avg_live_ins']:.1f} live-ins)")
    record = result.adapted.records[0]
    print(f"model: {record.kind} SP, triggers at {record.triggers}")

    # Show the generated p-slice — compare with the paper's Figure 5(b).
    listing = result.program.disassemble()
    start = listing.find(record.stub_label)
    print("\ngenerated attachment (Figure 7 layout):")
    print(listing[start - 1:])

    # 4. Run the SSP-enhanced binary on both machine models.
    for model in ("inorder", "ooo"):
        base = simulate(program, workload.build_heap(), model,
                        spawning=False)
        heap = workload.build_heap()
        ssp = simulate(result.program, heap, model)
        workload.check_output(heap)  # speculation never altered the result
        print(f"\n{model:8s}: baseline {base.cycles:>9,} cycles | "
              f"SSP {ssp.cycles:>9,} cycles | "
              f"speedup {base.cycles / ssp.cycles:.2f}x "
              f"({ssp.spawns} chained spawns)")


if __name__ == "__main__":
    main()
