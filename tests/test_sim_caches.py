"""Unit tests for the cache hierarchy, fill buffer, TLB and partial misses."""

import pytest

from repro.sim import MemorySystem, inorder_config
from repro.sim.caches import L1, L2, L3, MEM, CacheLevel
from repro.sim.config import CacheConfig


def mem():
    return MemorySystem(inorder_config())


class TestCacheLevel:
    def test_hit_after_insert(self):
        cache = CacheLevel(CacheConfig(16 * 1024, 4, 2))
        cache.insert(42)
        assert cache.lookup(42)

    def test_miss_when_absent(self):
        cache = CacheLevel(CacheConfig(16 * 1024, 4, 2))
        assert not cache.lookup(42)

    def test_lru_eviction(self):
        cache = CacheLevel(CacheConfig(16 * 1024, 4, 2))
        sets = cache.num_sets
        lines = [i * sets for i in range(5)]  # all map to set 0
        for line in lines[:4]:
            cache.insert(line)
        cache.lookup(lines[0])        # make line 0 MRU
        evicted = cache.insert(lines[4])
        assert evicted == lines[1]    # line 1 was LRU
        assert cache.contains(lines[0])

    def test_reinsert_touches_not_evicts(self):
        cache = CacheLevel(CacheConfig(16 * 1024, 4, 2))
        cache.insert(0)
        assert cache.insert(0) is None

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheLevel(CacheConfig(1000, 3, 2))


class TestHierarchy:
    def test_cold_miss_goes_to_memory(self):
        m = mem()
        r = m.access(0x2000, now=0, uid=1, is_main=True)
        assert r.level == MEM
        # Memory latency plus the first-touch TLB miss penalty.
        assert r.ready == m.config.memory_latency + m.config.tlb_miss_penalty

    def test_second_access_hits_l1(self):
        m = mem()
        first = m.access(0x2000, 0, 1, True)
        r = m.access(0x2000, first.ready + 1, 1, True)
        assert r.level == L1
        assert r.ready == first.ready + 1 + m.config.l1.latency

    def test_same_line_different_word_hits(self):
        m = mem()
        first = m.access(0x2000, 0, 1, True)
        r = m.access(0x2038, first.ready + 1, 1, True)  # same 64B line
        assert r.level == L1

    def test_partial_miss_on_in_transit_line(self):
        m = mem()
        first = m.access(0x2000, 0, 1, True)
        r = m.access(0x2000, 10, 2, True)  # long before fill completes
        assert r.partial
        assert r.level == MEM              # origin of the fill
        assert r.ready == first.ready      # completes with the fill

    def test_prefetch_then_demand_load_is_partial(self):
        m = mem()
        pf = m.access(0x4000, 0, 99, is_main=False, is_prefetch=True)
        demand = m.access(0x4000, 50, 1, is_main=True)
        assert demand.partial and demand.ready == pf.ready

    def test_prefetch_long_before_demand_gives_l1_hit(self):
        m = mem()
        pf = m.access(0x4000, 0, 99, is_main=False, is_prefetch=True)
        demand = m.access(0x4000, pf.ready + 10, 1, True)
        assert demand.level == L1 and not demand.partial

    def test_l2_hit_after_l1_eviction(self):
        m = mem()
        cfg = m.config
        # Fill far more lines than L1 holds, all resident in L2 afterwards.
        lines = cfg.l1.size_bytes // 64 * 2
        t = 0
        for i in range(lines):
            t = m.access(0x2000 + i * 64, t, 1, True).ready + 1
        r = m.access(0x2000, t + 1000, 1, True)
        assert r.level in (L2, L3)  # evicted from L1, held below

    def test_perfect_memory_mode(self):
        m = MemorySystem(inorder_config().with_perfect_memory())
        r = m.access(0x2000, 0, 1, True)
        assert r.level == L1 and r.ready == m.config.l1.latency

    def test_perfect_delinquent_load_mode(self):
        m = MemorySystem(inorder_config().with_perfect_loads({7}))
        fast = m.access(0x2000, 0, 7, True)
        slow = m.access(0x6000, 0, 8, True)
        assert fast.level == L1
        assert slow.level == MEM


class TestFillBuffer:
    def test_fill_buffer_limits_outstanding_misses(self):
        m = mem()
        cfg = m.config
        results = [m.access(0x2000 + i * 64, 0, i, True)
                   for i in range(cfg.fill_buffer_entries + 4)]
        # The 17th+ miss cannot start until an earlier fill completes.
        ready = sorted(r.ready for r in results)
        assert ready[-1] > ready[0] + cfg.memory_latency // 2


class TestTLB:
    def test_tlb_miss_penalty_applied_once(self):
        m = mem()
        first = m.access(0x2000, 0, 1, True)
        # Same page later: L1 hit without the TLB penalty.
        later = m.access(0x2008, first.ready + 5, 1, True)
        assert later.ready - (first.ready + 5) == m.config.l1.latency
        assert m.tlb_misses == 1


class TestStatistics:
    def test_main_loads_recorded(self):
        m = mem()
        m.access(0x2000, 0, 5, is_main=True)
        assert m.load_stats[5].accesses == 1
        assert m.load_stats[5].hits[MEM] == 1
        assert m.load_stats[5].miss_cycles > 0

    def test_spec_thread_loads_not_recorded(self):
        m = mem()
        m.access(0x2000, 0, 5, is_main=False)
        assert 5 not in m.load_stats

    def test_stores_and_prefetches_not_in_load_stats(self):
        m = mem()
        m.access(0x2000, 0, 5, is_main=True, is_store=True)
        m.access(0x3000, 0, 6, is_main=True, is_prefetch=True)
        assert not m.load_stats
        assert m.prefetches_issued == 1

    def test_miss_rate(self):
        m = mem()
        r = m.access(0x2000, 0, 5, True)
        m.access(0x2000, r.ready + 1, 5, True)
        stats = m.load_stats[5]
        assert stats.accesses == 2 and stats.l1_misses == 1
        assert stats.miss_rate() == 0.5

    def test_flush_clears_state_not_stats(self):
        m = mem()
        r = m.access(0x2000, 0, 5, True)
        m.flush()
        r2 = m.access(0x2000, r.ready + 1, 5, True)
        assert r2.level == MEM  # cold again
        assert m.load_stats[5].accesses == 2


class TestPrefetchAttribution:
    """Regression tests for prefetch credit and counter consistency."""

    @staticmethod
    def tiny_mem():
        """Single-line caches at every level: any second line evicts."""
        import dataclasses
        cfg = dataclasses.replace(
            inorder_config(),
            l1=CacheConfig(64, 1, 1), l2=CacheConfig(64, 1, 6),
            l3=CacheConfig(64, 1, 14))
        return MemorySystem(cfg)

    def test_store_demand_fill_preserves_prefetch_credit(self):
        """A main-thread store's demand fill must not discard the pending
        timely-prefetch credit; the first main-thread *load* touch of the
        line consumes it (store-then-load patterns)."""
        m = self.tiny_mem()
        m.access(0x4000, 0, 99, is_main=False, is_prefetch=True)
        m.access(0x8000, 500, 1, is_main=True)  # evicts the line everywhere
        m.access(0x4000, 1000, 2, is_main=True, is_store=True)  # miss+fill
        r = m.access(0x4000, 1010, 3, is_main=True)  # load rides the fill
        assert r.partial
        assert m.load_stats[3].prefetch_late == 1
        assert m.prefetch_stats[99].useful == 1

    def test_load_after_store_hit_gets_timely_credit(self):
        m = mem()
        pf = m.access(0x4000, 0, 99, is_main=False, is_prefetch=True)
        m.access(0x4000, pf.ready + 1, 2, is_main=True, is_store=True)
        r = m.access(0x4000, pf.ready + 2, 3, is_main=True)
        assert r.level == L1 and not r.partial
        assert m.load_stats[3].prefetch_timely == 1
        assert m.prefetch_stats[99].useful == 1

    def test_slice_load_counts_in_global_counter(self):
        """An emitter-mapped speculative chase load is a prefetch for its
        source; the global counter and the per-static counter agree."""
        m = mem()
        m.prefetch_sources[50] = 7
        m.access(0x4000, 0, 50, is_main=False)
        assert m.prefetches_issued == 1
        assert m.prefetch_stats[50].issued == 1

    def test_perfect_memory_counts_issues(self):
        m = MemorySystem(inorder_config().with_perfect_memory())
        m.access(0x4000, 0, 99, is_main=False, is_prefetch=True)
        assert m.prefetches_issued == 1
        assert m.prefetch_stats[99].issued == 1

    def test_perfect_load_uids_branch_counts_issues(self):
        m = MemorySystem(inorder_config().with_perfect_loads({50}))
        m.prefetch_sources[50] = 7
        m.access(0x4000, 0, 50, is_main=False)
        assert m.prefetches_issued == 1
        assert m.prefetch_stats[50].issued == 1

    def test_global_counter_equals_per_static_sum(self):
        m = mem()
        m.prefetch_sources[50] = 7
        m.access(0x4000, 0, 50, is_main=False)        # mapped slice load
        m.access(0x8000, 5, 60, is_main=False, is_prefetch=True)  # lfetch
        m.access(0xc000, 9, 61, is_main=True, is_prefetch=True)   # main lfetch
        m.access(0x2000, 12, 5, is_main=True)         # plain demand load
        assert m.prefetches_issued == 3
        assert m.prefetches_issued == sum(
            ps.issued for ps in m.prefetch_stats.values())
