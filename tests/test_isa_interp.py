"""Unit tests for the functional interpreter (architectural semantics)."""

import pytest

from repro.isa import (
    ExecutionError,
    FunctionalInterpreter,
    FunctionBuilder,
    Heap,
    Program,
    ThreadState,
    execute,
    spawn_thread,
)
from repro.isa.instructions import Instruction

from helpers import linked_list_heap, list_sum_program


def run_main(build, heap=None, max_steps=1_000_000):
    """Build a one-function program with ``build(fb)`` and run it."""
    prog = Program(entry="main")
    fb = FunctionBuilder(prog.add_function("main"))
    heap = heap or Heap(1 << 16)
    build(fb, heap)
    prog.finalize()
    interp = FunctionalInterpreter(prog, heap, max_steps=max_steps)
    return interp, interp.run(), heap


class TestArithmetic:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("add", 5, 3, 8), ("sub", 5, 3, 2), ("mul", 5, 3, 15),
        ("and", 0b110, 0b011, 0b010), ("or", 0b110, 0b011, 0b111),
        ("xor", 0b110, 0b011, 0b101),
    ])
    def test_binary_ops(self, op, a, b, expected):
        out = []

        def build(fb, heap):
            ra = fb.mov_imm(a)
            rb = fb.mov_imm(b)
            rc = getattr(fb, op if op not in ("and", "or") else op + "_")(
                ra, rb)
            cell = heap.alloc(8)
            out.append(cell)
            fb.store(fb.mov_imm(cell), rc)
            fb.halt()

        _, _, heap = run_main(build)
        assert heap.load(out[0]) == expected

    def test_shifts(self):
        out = []

        def build(fb, heap):
            r = fb.mov_imm(6)
            l = fb.shl(r, 2)
            rr = fb.shr(l, 1)
            cell = heap.alloc(8)
            out.append(cell)
            fb.store(fb.mov_imm(cell), rr)
            fb.halt()

        _, _, heap = run_main(build)
        assert heap.load(out[0]) == 12

    def test_immediate_operand(self):
        out = []

        def build(fb, heap):
            r = fb.add(fb.mov_imm(40), imm=2)
            cell = heap.alloc(8)
            out.append(cell)
            fb.store(fb.mov_imm(cell), r)
            fb.halt()

        _, _, heap = run_main(build)
        assert heap.load(out[0]) == 42

    def test_r0_stays_zero(self):
        out = []

        def build(fb, heap):
            fb.mov_imm(99, dest="r0")
            cell = heap.alloc(8)
            out.append(cell)
            fb.store(fb.mov_imm(cell), "r0")
            fb.halt()

        _, _, heap = run_main(build)
        assert heap.load(out[0]) == 0


class TestPredication:
    def test_false_predicate_squashes(self):
        out = []

        def build(fb, heap):
            p = fb.cmp("eq", fb.mov_imm(1), imm=2)  # false
            r = fb.mov_imm(10, dest="r60")
            fb.mov_imm(99, dest="r60", pred=p)      # squashed
            cell = heap.alloc(8)
            out.append(cell)
            fb.store(fb.mov_imm(cell), "r60")
            fb.halt()

        _, _, heap = run_main(build)
        assert heap.load(out[0]) == 10

    def test_true_predicate_executes(self):
        out = []

        def build(fb, heap):
            p = fb.cmp("eq", fb.mov_imm(2), imm=2)  # true
            fb.mov_imm(10, dest="r60")
            fb.mov_imm(99, dest="r60", pred=p)
            cell = heap.alloc(8)
            out.append(cell)
            fb.store(fb.mov_imm(cell), "r60")
            fb.halt()

        _, _, heap = run_main(build)
        assert heap.load(out[0]) == 99

    @pytest.mark.parametrize("rel,a,b,expected", [
        ("eq", 3, 3, True), ("ne", 3, 3, False), ("lt", 2, 3, True),
        ("le", 3, 3, True), ("gt", 4, 3, True), ("ge", 2, 3, False),
    ])
    def test_relations(self, rel, a, b, expected):
        out = []

        def build(fb, heap):
            p = fb.cmp(rel, fb.mov_imm(a), fb.mov_imm(b))
            fb.mov_imm(0, dest="r60")
            fb.mov_imm(1, dest="r60", pred=p)
            cell = heap.alloc(8)
            out.append(cell)
            fb.store(fb.mov_imm(cell), "r60")
            fb.halt()

        _, _, heap = run_main(build)
        assert heap.load(out[0]) == (1 if expected else 0)


class TestControlFlow:
    def test_list_sum(self):
        heap, _, out = linked_list_heap(20)
        prog = list_sum_program(heap.load  # head is first list-order node
                                and None or 0, out)  # placeholder

    def test_loop_sums_list(self):
        heap, addrs, out = linked_list_heap(20)
        prog = list_sum_program(addrs[0], out)
        FunctionalInterpreter(prog, heap).run()
        assert heap.load(out) == 20 * 21 // 2

    def test_recursive_call(self):
        prog = Program(entry="main")
        f = FunctionBuilder(prog.add_function("fact", num_params=1))
        (n,) = f.params(1)
        p = f.cmp("le", n, imm=1)
        f.br_cond(p, "base")
        nm1 = f.sub(n, imm=1)
        rec = f.call_fresh("fact", [nm1])
        f.ret(f.mul(n, rec))
        f.label("base")
        f.ret(f.mov_imm(1))
        heap = Heap(1 << 14)
        cell = heap.alloc(8)
        m = FunctionBuilder(prog.add_function("main"))
        r = m.call_fresh("fact", [m.mov_imm(6)])
        m.store(m.mov_imm(cell), r)
        m.halt()
        prog.finalize()
        FunctionalInterpreter(prog, heap).run()
        assert heap.load(cell) == 720

    def test_indirect_call_dispatch(self):
        prog = Program(entry="main")
        for name, value in (("f1", 111), ("f2", 222)):
            g = FunctionBuilder(prog.add_function(name))
            g.ret(g.mov_imm(value))
        heap = Heap(1 << 14)
        cell = heap.alloc(8)
        m = FunctionBuilder(prog.add_function("main"))
        prog.finalize()  # to learn ids
        fid = prog.function_id["f2"]
        idr = m.mov_imm(fid)
        r = m.fresh()
        m.call_indirect(idr, ret=r)
        m.store(m.mov_imm(cell), r)
        m.halt()
        prog.finalize()
        interp = FunctionalInterpreter(prog, heap)
        interp.run()
        assert heap.load(cell) == 222
        # The dynamic call graph recorded the indirect target.
        (targets,) = interp.indirect_targets.values()
        assert targets == {"f2": 1}

    def test_return_from_outermost_frame_halts(self):
        prog = Program(entry="main")
        fb = FunctionBuilder(prog.add_function("main"))
        fb.ret()
        prog.finalize()
        state = FunctionalInterpreter(prog, Heap(1 << 13)).run()
        assert state.halted

    def test_infinite_loop_detected(self):
        def build(fb, heap):
            fb.label("spin")
            fb.br("spin")

        with pytest.raises(ExecutionError, match="steps"):
            run_main(build, max_steps=1000)


class TestMemorySemantics:
    def test_bad_load_address_faults_main_thread(self):
        def build(fb, heap):
            fb.load(fb.mov_imm(3))  # misaligned
            fb.halt()

        with pytest.raises(ExecutionError, match="load"):
            run_main(build)

    def test_bad_store_address_faults(self):
        def build(fb, heap):
            fb.store(fb.mov_imm(0), "r0")  # below HEAP_BASE
            fb.halt()

        with pytest.raises(ExecutionError, match="store"):
            run_main(build)

    def test_speculative_bad_load_returns_zero(self):
        prog = Program(entry="main")
        fb = FunctionBuilder(prog.add_function("main"))
        fb.load(fb.mov_imm(3), dest="r60")
        fb.kill()
        prog.finalize()
        heap = Heap(1 << 13)
        state = ThreadState(tid=1, pc=0, speculative=True)
        state.regs["r40"] = 3
        while not state.done:
            execute(prog, heap, state, prog.code[state.pc])
        assert state.regs["r60"] == 0

    def test_speculative_store_forbidden(self):
        prog = Program(entry="main")
        fb = FunctionBuilder(prog.add_function("main"))
        fb.store(fb.mov_imm(0x2000), "r0")
        fb.kill()
        prog.finalize()
        state = ThreadState(tid=1, pc=0, speculative=True)
        heap = Heap(1 << 14)
        execute(prog, heap, state, prog.code[0])  # the mov
        with pytest.raises(ExecutionError, match="store"):
            execute(prog, heap, state, prog.code[1])

    def test_invalid_prefetch_dropped_silently(self):
        def build(fb, heap):
            fb.prefetch(fb.mov_imm(3))
            fb.halt()

        _, state, _ = run_main(build)
        assert state.halted


class TestSSPOpcodes:
    def test_chk_not_firing_falls_through(self):
        prog = Program(entry="main")
        fb = FunctionBuilder(prog.add_function("main"))
        fb.chk_c("stub")
        fb.halt()
        fb.label("stub")
        fb.rfi()
        prog.finalize()
        state = FunctionalInterpreter(prog, Heap(1 << 13)).run()
        assert state.halted

    def test_chk_firing_runs_stub_and_resumes(self):
        prog = Program(entry="main")
        fb = FunctionBuilder(prog.add_function("main"))
        fb.chk_c("stub")
        fb.mov_imm(7, dest="r60")
        fb.halt()
        fb.label("stub")
        fb.mov_imm(1, dest="r61")
        fb.rfi()
        prog.finalize()
        heap = Heap(1 << 13)
        state = ThreadState(tid=0, pc=0)
        while not state.done:
            instr = prog.code[state.pc]
            execute(prog, heap, state, instr, chk_fires=(instr.op == "chk.c"))
        assert state.regs["r61"] == 1  # stub ran
        assert state.regs["r60"] == 7  # resumed after the chk

    def test_rfi_without_pending_recovery_raises(self):
        prog = Program(entry="main")
        fb = FunctionBuilder(prog.add_function("main"))
        fb.rfi()
        prog.finalize()
        state = ThreadState(tid=0, pc=0)
        with pytest.raises(ExecutionError, match="rfi"):
            execute(prog, Heap(1 << 13), state, prog.code[0])

    def test_live_in_buffer_snapshot(self):
        parent = ThreadState(tid=0, pc=0)
        parent.lib_out[0] = 123
        child = spawn_thread(parent, 1, 0)
        parent.lib_out[0] = 456  # overwrite after spawn
        assert child.lib_in[0] == 123
        assert child.speculative

    def test_lib_roundtrip(self):
        prog = Program(entry="main")
        fb = FunctionBuilder(prog.add_function("main"))
        fb.lib_store(2, fb.mov_imm(77))
        fb.halt()
        prog.finalize()
        heap = Heap(1 << 13)
        state = ThreadState(tid=0, pc=0)
        while not state.done:
            execute(prog, heap, state, prog.code[state.pc])
        assert state.lib_out[2] == 77


class TestProfiling:
    def test_exec_counts(self):
        heap, addrs, out = linked_list_heap(10)
        prog = list_sum_program(addrs[0], out)
        interp = FunctionalInterpreter(prog, heap)
        interp.run()
        loop_loads = [i for i in prog.code if i.op == "ld"]
        assert all(interp.exec_counts[ld.uid] == 10 for ld in loop_loads)
