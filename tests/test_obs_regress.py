"""Tests for the perf-regression ledger (:mod:`repro.obs.regress`).

Covers the statistical gate over synthetic records (noise band AND
relative-floor semantics, improved/missing verdicts), real median-of-K
measurement, ledger append/read durability, baseline pin/load, and the
``bench record`` / ``bench compare`` CLI including the injected-slowdown
self-test the acceptance criteria call for.
"""

import json

import pytest

from repro.obs import regress
from repro.tool.cli import main


def _record(cps, mad=10.0, name="mcf"):
    return {"workloads": {name: {"cps_median": float(cps),
                                 "cps_mad": float(mad)}}}


class TestCompareGate:
    def test_identical_records_pass(self):
        rec = _record(1000.0)
        result = regress.compare(rec, rec)
        assert result["ok"] and result["regressions"] == 0
        assert result["rows"][0]["verdict"] == "ok"

    def test_jitter_within_band_passes(self):
        # 0.8% drop: under both the 3-sigma band and the 10% floor.
        result = regress.compare(_record(1000.0), _record(992.0))
        assert result["ok"]

    def test_big_drop_fails(self):
        result = regress.compare(_record(1000.0), _record(600.0))
        assert not result["ok"]
        row = result["rows"][0]
        assert row["verdict"] == "regressed"
        assert row["delta_rel"] == pytest.approx(-0.4)

    def test_drop_beyond_band_but_under_floor_passes(self):
        # 5% drop clears a tight band but not the 10% relative floor:
        # both conditions must hold for a regression.
        result = regress.compare(_record(1000.0, mad=1.0),
                                 _record(950.0, mad=1.0))
        assert result["ok"]

    def test_drop_beyond_floor_but_in_band_passes(self):
        # 20% drop inside a huge noise band: still not a regression.
        result = regress.compare(_record(1000.0, mad=200.0),
                                 _record(800.0, mad=200.0))
        assert result["ok"]

    def test_noisy_baseline_cannot_veto_a_catastrophic_drop(self):
        # MAD over tiny K is a crude sigma estimate; a pathologically
        # noisy baseline must not produce an unclearable band.
        result = regress.compare(_record(1000.0, mad=500.0),
                                 _record(100.0, mad=50.0))
        assert not result["ok"]
        assert result["rows"][0]["rel_band"] == regress.MAX_REL_BAND

    def test_improvement_never_fails(self):
        result = regress.compare(_record(1000.0), _record(2000.0))
        assert result["ok"]
        assert result["rows"][0]["verdict"] == "improved"

    def test_missing_and_new_workloads(self):
        base = {"workloads": {"mcf": {"cps_median": 1.0, "cps_mad": 0.0}}}
        cur = {"workloads": {"health": {"cps_median": 1.0,
                                        "cps_mad": 0.0}}}
        result = regress.compare(base, cur)
        assert result["ok"]  # missing is reported, not gated
        assert result["rows"][0]["verdict"] == "missing"
        assert result["new_workloads"] == ["health"]

    def test_render_compare(self):
        result = regress.compare(_record(1000.0), _record(600.0))
        text = regress.render_compare(result)
        assert "regressed" in text
        assert "gate: FAIL (1 regression(s))" in text
        passing = regress.render_compare(
            regress.compare(_record(1000.0), _record(1000.0)))
        assert "gate: PASS" in passing

    def test_stale_baseline_fails_the_gate(self):
        # A zeroed cps_median carries no throughput signal: relative
        # drops are undefined against it, so before the stale verdict a
        # total stall (new_cps ~ 0 too) sailed through as "ok".
        result = regress.compare(_record(0.0), _record(0.0))
        assert not result["ok"]
        assert result["stale"] == 1 and result["regressions"] == 0
        assert result["rows"][0]["verdict"] == "stale"
        text = regress.render_compare(result)
        assert "stale" in text and "re-pin" in text
        assert "gate: FAIL" in text and "stale baseline row(s)" in text
        # A healthy baseline against a zeroed current is an ordinary
        # (catastrophic) regression, not stale.
        result = regress.compare(_record(1000.0), _record(0.0))
        assert not result["ok"] and result["regressions"] == 1

    def test_median_speedup_reported(self):
        result = regress.compare(_record(1000.0), _record(3000.0))
        assert result["median_speedup"] == pytest.approx(3.0)
        assert "3.00x" in regress.render_compare(result)
        # No comparable rows -> 0.0, never a crash.
        assert regress.compare(_record(0.0),
                               _record(500.0))["median_speedup"] == 0.0

    def test_sample_counts_in_rows(self):
        base = _record(1000.0)
        base["workloads"]["mcf"]["n"] = 5
        new = _record(1000.0)
        new["workloads"]["mcf"]["n"] = 3
        result = regress.compare(base, new)
        row = result["rows"][0]
        assert row["base_n"] == 5 and row["new_n"] == 3
        assert "5/3" in regress.render_compare(result)


class TestMeasure:
    def test_measure_shape_and_json_safety(self):
        rec = regress.measure(["health"], scale="tiny", k=2,
                              label="unit")
        json.dumps(rec)
        assert rec["schema"] == regress.LEDGER_SCHEMA
        assert rec["label"] == "unit"
        assert rec["k"] == 2
        row = rec["workloads"]["health"]
        assert row["cycles"] > 0
        assert len(row["wall"]) == 2
        assert row["cps_median"] > 0
        assert row["wall_mad"] >= 0
        # An unchanged self-compare must pass the gate.
        assert regress.compare(rec, rec)["ok"]

    def test_injected_slowdown_regresses_against_itself(self):
        # inject_slowdown scales every wall sample deterministically, so
        # a 4x-slowed copy of a record regresses against the original by
        # construction once measurement noise is clamped out.
        rec = regress.measure(["health"], scale="tiny", k=2)
        base = json.loads(json.dumps(rec))
        slowed = json.loads(json.dumps(rec))
        for doc, scale in ((base, 1.0), (slowed, 4.0)):
            row = doc["workloads"]["health"]
            row["cps_median"] /= scale
            row["cps_mad"] = 0.02 * row["cps_median"]
        assert regress.compare(base, base)["ok"]
        assert not regress.compare(base, slowed)["ok"]

    def test_validation(self):
        with pytest.raises(ValueError):
            regress.measure(["health"], k=0)
        with pytest.raises(ValueError):
            regress.measure(["health"], inject_slowdown=0.0)


class TestLedgerFiles:
    def test_append_and_read_roundtrip(self, tmp_path):
        path = tmp_path / "ledger" / regress.LEDGER_NAME
        regress.append_record({"a": 1}, path)
        regress.append_record({"b": 2}, path)
        assert regress.read_ledger(path) == [{"a": 1}, {"b": 2}]

    def test_read_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / regress.LEDGER_NAME
        regress.append_record({"a": 1}, path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"torn": ')  # killed mid-write
        assert regress.read_ledger(path) == [{"a": 1}]

    def test_read_missing_ledger(self, tmp_path):
        assert regress.read_ledger(tmp_path / "absent.jsonl") == []

    def test_pin_and_load_baseline(self, tmp_path):
        path = tmp_path / regress.BASELINE_NAME
        regress.pin_baseline({"workloads": {}}, path)
        assert regress.load_baseline(path) == {"workloads": {}}
        assert regress.load_baseline(tmp_path / "absent.json") is None


class TestCLIBench:
    def test_record_pin_compare_and_injected_regression(
            self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "record", "health", "--k", "3",
                     "--pin", "--label", "seed"]) == 0
        out = capsys.readouterr().out
        assert "baseline pinned" in out
        assert (tmp_path / regress.BASELINE_NAME).exists()
        ledger = regress.read_ledger(tmp_path / regress.LEDGER_NAME)
        assert len(ledger) == 1 and ledger[0]["label"] == "seed"

        # An unchanged re-run passes the gate ...
        assert main(["bench", "compare", "health", "--k", "3"]) == 0
        assert "gate: PASS" in capsys.readouterr().out
        assert len(regress.read_ledger(
            tmp_path / regress.LEDGER_NAME)) == 2

        # ... and an injected synthetic regression fails it, without
        # polluting the ledger trajectory.  25x leaves the 96% drop
        # clear of the noise band even on a jittery CI host.
        assert main(["bench", "compare", "health", "--k", "3",
                     "--inject-slowdown", "25.0"]) == 1
        assert "gate: FAIL" in capsys.readouterr().out
        assert len(regress.read_ledger(
            tmp_path / regress.LEDGER_NAME)) == 2

    def test_compare_without_baseline_is_usage_error(
            self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "compare", "health", "--k", "1"]) == 2
        assert "no baseline" in capsys.readouterr().err

    def test_record_without_pin_leaves_no_baseline(
            self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "record", "health", "--k", "1"]) == 0
        assert not (tmp_path / regress.BASELINE_NAME).exists()
        assert (tmp_path / regress.LEDGER_NAME).exists()

    def test_pin_with_k_below_three_is_usage_error(
            self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        for k in ("1", "2"):
            assert main(["bench", "record", "health", "--k", k,
                         "--pin"]) == 2
            err = capsys.readouterr().err
            assert "cannot pin a baseline" in err
            assert not (tmp_path / regress.BASELINE_NAME).exists()
            # Rejected before measuring: nothing appended either.
            assert not (tmp_path / regress.LEDGER_NAME).exists()

    def test_k_below_three_without_pin_warns(
            self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "record", "health", "--k", "1"]) == 0
        assert "degenerate noise estimate" in capsys.readouterr().err

    def test_assert_speedup_gate(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "record", "health", "--k", "3",
                     "--pin"]) == 0
        capsys.readouterr()
        # An unchanged re-run is ~1x: a 100x assertion must fail even
        # though the regression gate itself passes ...
        assert main(["bench", "compare", "health", "--k", "3",
                     "--no-ledger", "--assert-speedup", "100"]) == 1
        captured = capsys.readouterr()
        assert "below asserted" in captured.err
        # ... and a trivial floor passes.
        assert main(["bench", "compare", "health", "--k", "3",
                     "--no-ledger", "--assert-speedup", "0.01"]) == 0
        assert "asserted speedup met" in capsys.readouterr().out
