"""Tests for trigger placement, the min-cut formulation, and the emitter."""

import pytest

from repro.analysis import CFG, CallGraph, DependenceGraph, RegionGraph
from repro.codegen import EmitError, LiveInLayout, SSPEmitter
from repro.isa import FunctionBuilder, FunctionalInterpreter, Heap, Program
from repro.isa.interp import LIB_SLOTS
from repro.scheduling import BasicScheduler, ChainingScheduler
from repro.slicing import ContextSensitiveSlicer, restrict_to_region
from repro.triggers import (
    TriggerPoint,
    edge_frequencies,
    optimal_trigger_cut,
    place_triggers,
)

from helpers import mcf_like_workload


def mcf_setup():
    prog, heap, out = mcf_like_workload(narcs=40, nnodes=12)
    func = prog.function("main")
    cfg = CFG(func)
    dgs = {"main": DependenceGraph(func, cfg)}
    cg = CallGraph(prog)
    rg = RegionGraph(prog, cg)
    slicer = ContextSensitiveSlicer(prog, cg, dgs)
    loads = [i for i in func.block("loop").instrs if i.op == "ld"]
    sl = slicer.slice_load_address(loads[1], "main")
    region = rg.region_of_block("main", "loop")
    rs = restrict_to_region(sl, region, rg, dgs)
    return prog, heap, out, {"main": cfg}, rs, rg


class TestPlacement:
    def test_chaining_trigger_in_preheader(self):
        prog, _, _, cfgs, rs, rg = mcf_setup()
        sched = ChainingScheduler().schedule(rs)
        points = place_triggers(prog, sched, cfgs)
        assert len(points) == 1
        point = points[0]
        assert point.block == "entry"  # the loop's entry block
        # Placed after the last live-in producer (mov of K into r51).
        block = prog.function("main").block("entry")
        defs_before = {i.dest for i in block.instrs[:point.index]}
        assert set(sched.live_ins) <= defs_before

    def test_basic_loop_trigger_at_header(self):
        prog, _, _, cfgs, rs, rg = mcf_setup()
        sched = BasicScheduler().schedule(rs)
        points = place_triggers(prog, sched, cfgs)
        assert points == [TriggerPoint("main", "loop", 0)]

    def test_trigger_point_equality_and_hash(self):
        a = TriggerPoint("f", "b", 1)
        b = TriggerPoint("f", "b", 1)
        c = TriggerPoint("f", "b", 2)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_hoisting_above_empty_dominators(self):
        """The trigger climbs the dominator chain to the live-in def."""
        prog = Program()
        fb = FunctionBuilder(prog.add_function("f"))
        fb.mov_imm(0x2000, dest="r100")   # live-in producer, entry block
        fb.mov_imm(3, dest="r105")
        fb.label("middle")                # dominating, no live-in defs
        fb.sub("r105", imm=1, dest="r105")
        fb.label("loop")
        fb.load("r100", 8, dest="r100")
        p = fb.cmp("ne", "r100", imm=0)
        fb.br_cond(p, "loop")
        q = fb.cmp("gt", "r105", imm=0)
        fb.br_cond(q, "middle")
        fb.halt()
        prog.finalize()
        from repro.triggers.placement import _hoisted_placement
        func = prog.function("f")
        cfg = CFG(func)
        point = _hoisted_placement(func, cfg, "middle", {"r100"})
        assert point.block == "entry"
        assert func.block("entry").instrs[point.index - 1].dest == "r100"


class TestMinCut:
    def make_cfg(self):
        prog = Program()
        fb = FunctionBuilder(prog.add_function("f"))
        p = fb.cmp("eq", fb.mov_imm(1), imm=1)
        fb.br_cond(p, "hot")
        fb.label("cold")
        fb.mov_imm(2)
        fb.br("join")
        fb.label("hot")
        fb.mov_imm(3)
        fb.label("join")
        fb.load(fb.mov_imm(0x2000))
        fb.halt()
        return CFG(prog.function("f"))

    def test_edge_frequencies_split_block_counts(self):
        cfg = self.make_cfg()
        freqs = edge_frequencies(cfg, {"entry": 100, "hot": 99,
                                       "cold": 1, "join": 100})
        assert freqs[("entry", "hot")] == pytest.approx(50.0)
        assert freqs[("hot", "join")] == pytest.approx(99.0)

    def test_min_cut_separates_entry_from_target(self):
        cfg = self.make_cfg()
        cut = optimal_trigger_cut(
            cfg, {"entry": 100, "hot": 99, "cold": 100, "join": 199},
            "join")
        assert cut  # a cut exists
        # Removing the cut edges must disconnect entry from join.
        import networkx as nx
        g = nx.DiGraph()
        for src, dst in cfg.edges():
            if dst != "<exit>" and (src, dst) not in cut:
                g.add_edge(src, dst)
        assert not (g.has_node("entry") and g.has_node("join")
                    and nx.has_path(g, "entry", "join"))

    def test_unreachable_target_gives_empty_cut(self):
        cfg = self.make_cfg()
        assert optimal_trigger_cut(cfg, {}, "nowhere") == []


class TestLiveInLayout:
    def test_roundtrip_codegen(self):
        layout = LiveInLayout(["r100", "r101"])
        ins = layout.copy_in_code()
        outs = layout.copy_out_code()
        assert [i.op for i in ins] == ["lib.st", "lib.st"]
        assert [i.op for i in outs] == ["lib.ld", "lib.ld"]
        assert outs[0].dest == "r100" and outs[0].imm == 0
        assert ins[1].srcs == ("r101",) and ins[1].imm == 1

    def test_too_many_live_ins_rejected(self):
        with pytest.raises(ValueError):
            LiveInLayout([f"r{i}" for i in range(LIB_SLOTS + 1)])


class TestEmitter:
    def adapted(self):
        prog, heap, out, cfgs, rs, rg = mcf_setup()
        sched = ChainingScheduler().schedule(rs)
        points = place_triggers(prog, sched, cfgs)
        emitter = SSPEmitter(prog)
        record = emitter.add_slice(sched, points)
        return prog, heap, out, emitter.finalize(), record

    def test_figure7_layout(self):
        prog, _, _, adapted, record = self.adapted()
        func = adapted.program.function("main")
        assert func.has_block(record.stub_label)
        assert func.has_block(record.slice_label)
        stub_ops = [i.op for i in func.block(record.stub_label).instrs]
        assert stub_ops[-2:] == ["spawn", "rfi"]
        assert all(op == "lib.st" for op in stub_ops[:-2])
        slice_ops = [i.op for i in func.block(record.slice_label).instrs]
        assert slice_ops[-1] == "kill" or "kill" in slice_ops

    def test_trigger_replaces_nop(self):
        prog, _, _, adapted, record = self.adapted()
        # The original mcf-like kernel has no nop at the trigger point, so
        # the chk.c is inserted; build one with a nop to check replacement.
        from repro.workloads import make_workload
        w = make_workload("mcf", "tiny")
        wprog = w.build_program()
        n_before = sum(1 for i in wprog.instructions() if i.op == "nop")
        from repro.profiling import collect_profile
        from repro.tool import SSPPostPassTool
        profile = collect_profile(wprog, w.build_heap)
        result = SSPPostPassTool().adapt(wprog, profile)
        n_after = sum(1 for i in result.program.instructions()
                      if i.op == "nop")
        n_chk = sum(1 for i in result.program.instructions()
                    if i.op == "chk.c")
        assert n_chk >= 1
        assert n_after < n_before  # a nop was consumed

    def test_original_program_untouched(self):
        prog, _, _, adapted, record = self.adapted()
        assert all(i.op != "chk.c" for i in prog.instructions())
        assert not prog.function("main").has_block(record.slice_label)

    def test_main_instruction_uids_preserved(self):
        prog, _, _, adapted, record = self.adapted()
        original = {i.uid for i in prog.instructions()}
        cloned = {i.uid for i in adapted.program.instructions()}
        assert original <= cloned

    def test_slice_has_no_stores(self):
        prog, _, _, adapted, record = self.adapted()
        func = adapted.program.function("main")
        for label in (record.slice_label,):
            for instr in func.block(label).instrs:
                assert not instr.is_store

    def test_delinquent_load_converted_to_prefetch(self):
        prog, _, _, adapted, record = self.adapted()
        func = adapted.program.function("main")
        ops = [i.op for i in func.block(record.slice_label).instrs]
        assert "lfetch" in ops

    def test_adapted_binary_correct_and_faster(self):
        from repro.sim import simulate
        prog, heap, out, adapted, record = self.adapted()
        base = simulate(prog, heap, "inorder", spawning=False)
        expected = heap.load(out)
        prog2, heap2, out2 = mcf_like_workload(narcs=40, nnodes=12)
        ssp = simulate(adapted.program, heap2, "inorder")
        assert heap2.load(out2) == expected
        assert ssp.cycles < base.cycles

    def test_speculative_callee_clone_is_store_free(self):
        prog = Program(entry="main")
        callee = FunctionBuilder(prog.add_function("writer", num_params=1))
        (x,) = callee.params(1)
        callee.store(x, "r0")
        callee.ret(callee.load(x, 8))
        m = FunctionBuilder(prog.add_function("main"))
        m.halt()
        prog.finalize()
        emitter = SSPEmitter(prog)
        clone_name = emitter._speculative_clone("writer")
        clone = emitter.program.function(clone_name)
        assert all(not i.is_store for i in clone.instructions())
        assert any(i.op == "ld" for i in clone.instructions())
