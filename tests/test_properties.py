"""Property-based tests (hypothesis) for core invariants."""

import networkx as nx
from hypothesis import assume, given, settings, strategies as st

from repro.analysis.cfg import CFG, EXIT
from repro.analysis.dominance import dominator_tree
from repro.isa import FunctionBuilder, Program
from repro.sim.branch import GsharePredictor
from repro.sim.caches import CacheLevel
from repro.sim.config import CacheConfig
from repro.scheduling.rotation import _score
from repro.scheduling.slack import reduced_miss_cycles


# ---------------------------------------------------------------------------
# Random CFGs: build a function whose blocks branch per a random edge list.
# ---------------------------------------------------------------------------

@st.composite
def random_cfg(draw):
    n = draw(st.integers(2, 8))
    prog = Program()
    fb = FunctionBuilder(prog.add_function("f"))
    labels = [f"b{i}" for i in range(n)]
    # Each block conditionally branches to one random target and falls
    # through to the next block (or halts at the end).
    targets = [draw(st.integers(0, n - 1)) for _ in range(n)]
    for i, label in enumerate(labels):
        if i == 0:
            fb.label(label) if label != "entry" else None
        if i > 0:
            fb.label(label)
        p = fb.cmp("eq", "r0", imm=0)
        fb.br_cond(p, labels[targets[i]])
        if i == n - 1:
            fb.halt()
    func = prog.function("f")
    return CFG(func)


class TestDominanceProperties:
    @settings(max_examples=60, deadline=None)
    @given(random_cfg())
    def test_matches_networkx_idom(self, cfg):
        reachable = cfg.reachable() - {EXIT}
        assume(len(reachable) >= 2)
        g = nx.DiGraph()
        g.add_node(cfg.entry)
        for src, dst in cfg.edges():
            if dst != EXIT and src in reachable:
                g.add_edge(src, dst)
        expected = nx.immediate_dominators(g, cfg.entry)
        dom = dominator_tree(cfg)
        for node in reachable:
            if node == cfg.entry or node not in expected:
                continue
            assert dom.idom.get(node) == expected[node], \
                f"idom({node}) mismatch"

    @settings(max_examples=40, deadline=None)
    @given(random_cfg())
    def test_entry_dominates_everything(self, cfg):
        dom = dominator_tree(cfg)
        for node in cfg.reachable() - {EXIT}:
            assert dom.dominates(cfg.entry, node)


class TestCacheProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 200), min_size=1, max_size=200))
    def test_lru_matches_reference_model(self, accesses):
        cache = CacheLevel(CacheConfig(4 * 64 * 4, 4, 1))  # 4 sets, 4 ways
        sets = cache.num_sets
        reference = {s: [] for s in range(sets)}
        for line in accesses:
            s = line & (sets - 1)
            ref = reference[s]
            expected_hit = line in ref
            hit = cache.lookup(line)
            assert hit == expected_hit
            if not hit:
                cache.insert(line)
                ref.append(line)
                if len(ref) > 4:
                    ref.pop(0)
            else:
                ref.remove(line)
                ref.append(line)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 100), min_size=1, max_size=80))
    def test_occupancy_never_exceeds_ways(self, lines):
        cache = CacheLevel(CacheConfig(2 * 64 * 2, 2, 1))  # 2 sets, 2 ways
        for line in lines:
            cache.insert(line)
        # _sets is a lazy dict of set-index -> {line: None}.
        for s in cache._sets.values():
            assert len(s) <= 2


class TestPredictorProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    def test_counters_stay_saturating(self, outcomes):
        pred = GsharePredictor(entries=64)
        for taken in outcomes:
            pred.predict_and_update(12, 0, taken)
        assert all(0 <= c <= 3 for c in pred._counters)

    def test_learns_always_taken(self):
        pred = GsharePredictor(entries=64)
        for _ in range(8):
            pred.predict_and_update(40, 0, True)
        before = pred.mispredicts
        for _ in range(50):
            pred.predict_and_update(40, 0, True)
        assert pred.mispredicts == before

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 6))
    def test_entries_must_be_power_of_two(self, shift):
        GsharePredictor(entries=1 << shift)  # fine
        import pytest
        with pytest.raises(ValueError):
            GsharePredictor(entries=(1 << shift) + 1)


class TestRotationProperties:
    @settings(max_examples=80, deadline=None)
    @given(st.integers(2, 12), st.data())
    def test_admissible_scores_only(self, n, data):
        intra = data.draw(st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=10).map(
                lambda deps: [(a, b) for a, b in deps if a < b]))
        carried = data.draw(st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=10))
        # k=0 must always be admissible (identity preserves intra order).
        assert _score(0, n, carried, intra) is not None
        for k in range(n):
            score = _score(k, n, carried, intra)
            if score is None:
                continue
            # Check admissibility directly.
            def rot(p):
                return (p - k) % n
            assert all(rot(a) < rot(b) for a, b in intra)
            assert 0 <= score <= len(carried)


class TestSlackProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.floats(0.1, 1000), st.integers(1, 10_000),
           st.floats(0.1, 1000))
    def test_reduced_miss_cycles_bounded(self, slack, trips, miss):
        value = reduced_miss_cycles(slack, trips, miss)
        assert 0 <= value <= trips * miss + 1e-6

    @settings(max_examples=50, deadline=None)
    @given(st.floats(0.1, 100), st.integers(1, 1000), st.floats(0.1, 100))
    def test_monotone_in_slack(self, slack, trips, miss):
        low = reduced_miss_cycles(slack, trips, miss)
        high = reduced_miss_cycles(slack * 2, trips, miss)
        assert high >= low - 1e-9


# ---------------------------------------------------------------------------
# Round trips: asm parse <-> emit, SimStats to_dict <-> from_dict.
# ---------------------------------------------------------------------------

_REG = st.integers(1, 120).map("r{}".format)
_PRED = st.integers(1, 60).map("p{}".format)
_IMM = st.integers(-4096, 1 << 20)


@st.composite
def random_instruction(draw, fb):
    """Emit one random (non-control-flow) instruction via the builder."""
    kind = draw(st.sampled_from(
        ["alu", "mov", "mov_imm", "load", "store", "cmp", "nop",
         "prefetch", "lib_store", "lib_load"]))
    pred = draw(st.one_of(st.none(), _PRED))
    if kind == "alu":
        fb.add(draw(_REG), draw(_REG), dest=draw(_REG), pred=pred)
    elif kind == "mov":
        fb.mov(draw(_REG), dest=draw(_REG), pred=pred)
    elif kind == "mov_imm":
        fb.mov_imm(draw(_IMM), dest=draw(_REG), pred=pred)
    elif kind == "load":
        fb.load(draw(_REG), draw(st.integers(0, 56)), dest=draw(_REG),
                pred=pred)
    elif kind == "store":
        fb.store(draw(_REG), draw(_REG), pred=pred)
    elif kind == "cmp":
        from repro.isa.instructions import CMP_RELATIONS
        fb.cmp(draw(st.sampled_from(sorted(CMP_RELATIONS))), draw(_REG),
               imm=draw(_IMM), dest=draw(_PRED))
    elif kind == "prefetch":
        fb.prefetch(draw(_REG), draw(st.integers(0, 56)), pred=pred)
    elif kind == "lib_store":
        fb.lib_store(draw(st.integers(0, 15)), draw(_REG))
    elif kind == "lib_load":
        fb.lib_load(draw(st.integers(0, 15)), dest=draw(_REG))
    else:
        fb.nop()


@st.composite
def random_program(draw):
    """A random multi-block, multi-function program."""
    prog = Program(entry="main")
    num_funcs = draw(st.integers(1, 2))
    for fi in range(num_funcs):
        name = "main" if fi == 0 else f"fn{fi}"
        fb = FunctionBuilder(prog.add_function(
            name, num_params=draw(st.integers(0, 2))))
        num_blocks = draw(st.integers(1, 3))
        for bi in range(num_blocks):
            if bi > 0:
                fb.label(f"b{bi}")
            for _ in range(draw(st.integers(0, 5))):
                draw(random_instruction(fb))
            if bi + 1 < num_blocks and draw(st.booleans()):
                fb.br_cond(draw(_PRED), f"b{bi + 1}")
        if name == "main":
            fb.halt()
        else:
            fb.ret(draw(_REG))
    # Finalised listings carry code addresses; the parser strips them, so
    # finalise before disassembling to make the round trip a fixpoint.
    prog.finalize()
    return prog


class TestAsmRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(random_program())
    def test_parse_emit_fixpoint(self, prog):
        """disassemble -> parse -> disassemble is the identity."""
        from repro.isa.asm import round_trip

        text = prog.disassemble()
        assert round_trip(prog).disassemble() == text

    @settings(max_examples=30, deadline=None)
    @given(random_program())
    def test_parsed_program_preserves_structure(self, prog):
        from repro.isa.asm import parse_assembly

        parsed = parse_assembly(prog.disassemble(), entry=prog.entry)
        assert sorted(parsed.functions) == sorted(prog.functions)
        for name, func in prog.functions.items():
            other = parsed.functions[name]
            assert [b.label for b in other.blocks] == \
                [b.label for b in func.blocks]
            for b1, b2 in zip(func.blocks, other.blocks):
                assert [str(i) for i in b2.instrs] == \
                    [str(i) for i in b1.instrs]


_LEVELS = ("L1", "L2", "L3", "MEM")


@st.composite
def random_stats(draw):
    from repro.sim.caches import LoadStats, PrefetchStats
    from repro.sim.config import MachineConfig
    from repro.sim.caches import MemorySystem
    from repro.sim.stats import CYCLE_CATEGORIES, _SCALAR_FIELDS, SimStats

    stats = SimStats(MemorySystem(MachineConfig()))
    count = st.integers(0, 1 << 30)
    for name in _SCALAR_FIELDS:
        setattr(stats, name, draw(count))
    for cat in CYCLE_CATEGORIES:
        stats.cycle_breakdown[cat] = draw(count)
    mem = stats.memory
    for uid in draw(st.lists(st.integers(0, 500), unique=True,
                             max_size=5)):
        ls = LoadStats()
        ls.accesses = draw(count)
        for lvl in _LEVELS:
            ls.hits[lvl] = draw(count)
        for lvl in _LEVELS[1:]:
            ls.partials[lvl] = draw(count)
        ls.miss_cycles = draw(count)
        ls.prefetch_timely = draw(count)
        ls.prefetch_late = draw(count)
        mem.load_stats[uid] = ls
    for uid in draw(st.lists(st.integers(501, 900), unique=True,
                             max_size=4)):
        ps = PrefetchStats()
        ps.issued = draw(count)
        ps.useful = draw(count)
        mem.prefetch_stats[uid] = ps
        mem.prefetch_sources[uid] = draw(st.integers(0, 500))
    mem.tlb_misses = draw(count)
    mem.prefetches_issued = draw(count)
    mem.prefetches_dropped = draw(count)
    return stats


class TestSimStatsRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(random_stats())
    def test_to_dict_from_dict_fixpoint(self, stats):
        from repro.sim.stats import SimStats

        snapshot = stats.to_dict()
        rebuilt = SimStats.from_dict(snapshot)
        assert rebuilt.to_dict() == snapshot

    @settings(max_examples=20, deadline=None)
    @given(random_stats())
    def test_json_safe(self, stats):
        import json

        payload = json.dumps(stats.to_dict())
        from repro.sim.stats import SimStats
        rebuilt = SimStats.from_dict(json.loads(payload))
        assert rebuilt.to_dict() == stats.to_dict()
