"""Unit and property tests for the simulated heap."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import HEAP_BASE, Heap
from repro.isa.memory import MemoryError_


class TestAlloc:
    def test_allocations_are_disjoint(self):
        heap = Heap(1 << 16)
        a = heap.alloc(24)
        b = heap.alloc(24)
        assert b >= a + 24

    def test_alignment(self):
        heap = Heap(1 << 16)
        addr = heap.alloc(8, align=64)
        assert addr % 64 == 0

    def test_first_allocation_above_null_page(self):
        assert Heap(1 << 16).alloc(8) >= HEAP_BASE

    def test_exhaustion(self):
        heap = Heap(1 << 13)
        with pytest.raises(MemoryError_):
            heap.alloc(1 << 14)

    def test_bad_sizes_rejected(self):
        heap = Heap(1 << 13)
        with pytest.raises(ValueError):
            heap.alloc(0)
        with pytest.raises(ValueError):
            heap.alloc(8, align=12)

    def test_heap_size_must_be_word_multiple(self):
        with pytest.raises(ValueError):
            Heap(1001)

    def test_alloc_array_line_aligned(self):
        heap = Heap(1 << 16)
        assert heap.alloc_array(10, 8) % 64 == 0


class TestAccess:
    def test_store_load_roundtrip(self):
        heap = Heap(1 << 16)
        addr = heap.alloc(8)
        heap.store(addr, 0xDEADBEEF)
        assert heap.load(addr) == 0xDEADBEEF

    def test_misaligned_access_rejected(self):
        heap = Heap(1 << 16)
        with pytest.raises(MemoryError_):
            heap.load(heap.alloc(8) + 1)

    def test_out_of_range_rejected(self):
        heap = Heap(1 << 16)
        with pytest.raises(MemoryError_):
            heap.load(1 << 20)
        with pytest.raises(MemoryError_):
            heap.store(0, 1)

    def test_valid_predicate(self):
        heap = Heap(1 << 16)
        addr = heap.alloc(8)
        assert heap.valid(addr)
        assert not heap.valid(addr + 1)
        assert not heap.valid(0)
        assert not heap.valid(1 << 20)


class TestProperties:
    @given(st.lists(st.tuples(st.integers(0, 499),
                              st.integers(-2**63, 2**63 - 1)),
                    min_size=1, max_size=60))
    def test_last_write_wins(self, writes):
        heap = Heap(1 << 16)
        base = heap.alloc(500 * 8)
        expected = {}
        for slot, value in writes:
            heap.store(base + slot * 8, value)
            expected[slot] = value
        for slot, value in expected.items():
            assert heap.load(base + slot * 8) == value

    @given(st.lists(st.integers(8, 256), min_size=1, max_size=40))
    def test_allocations_never_overlap(self, sizes):
        heap = Heap(1 << 20)
        regions = []
        for size in sizes:
            addr = heap.alloc(size)
            for start, length in regions:
                assert addr >= start + length or addr + size <= start
            regions.append((addr, size))
