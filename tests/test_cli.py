"""Tests for the ssp-postpass command-line interface."""

import pytest

from repro.tool.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "em3d" in out

    def test_adapt_workload(self, capsys):
        assert main(["mcf", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "delinquent loads" in out
        assert "speedup" in out

    def test_adapt_with_disassembly(self, capsys):
        assert main(["mcf", "--scale", "tiny", "--disassemble"]) == 0
        out = capsys.readouterr().out
        assert ".ssp_slice1" in out
        assert "chk.c" in out

    def test_experiments_mode(self, capsys):
        assert main(["--experiments", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Modeled Research Itanium" in out

    def test_unknown_experiment(self, capsys):
        assert main(["--experiments", "figure99"]) == 2

    def test_no_args_prints_usage(self, capsys):
        assert main([]) == 2

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["nonexistent-bench"])

    def test_ooo_model(self, capsys):
        assert main(["mcf", "--scale", "tiny", "--model", "ooo"]) == 0
        out = capsys.readouterr().out
        assert "ooo baseline" in out
