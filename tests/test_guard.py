"""repro.guard: error taxonomy, recovery boundaries, the deterministic
fault injector, differential verification / rollback, speculative-context
containment budgets, and degenerate pipeline inputs."""

import dataclasses

import pytest

from repro.codegen.verify import differential_check
from repro.guard import (
    DROP_LOAD,
    DROP_SLICE,
    ERROR,
    ROLLBACK,
    STAGE_ERRORS,
    WARNING,
    CodegenError,
    Diagnostic,
    FaultInjector,
    FaultSpec,
    GuardError,
    GuardReport,
    InjectedFault,
    ScheduleError,
    SliceError,
    VerifyError,
    injecting,
    recovery_boundary,
)
from repro.guard import faultinject
from repro.isa import FunctionBuilder, Heap, Program
from repro.isa.instructions import Instruction
from repro.profiling import collect_profile
from repro.sim import simulate
from repro.sim.machine import make_config
from repro.tool import SSPPostPassTool, ToolOptions
from repro.workloads import make_workload

from helpers import linked_list_heap, list_sum_program


def adapt_workload(name="mcf", scale="tiny", options=None):
    workload = make_workload(name, scale)
    program = workload.build_program()
    profile = collect_profile(program, workload.build_heap)
    tool = SSPPostPassTool(options)
    result = tool.adapt(program, profile,
                        heap_factory=workload.build_heap)
    return workload, program, profile, result


# -- error taxonomy -----------------------------------------------------------------


class TestErrorTaxonomy:
    def test_stage_classes(self):
        assert SliceError.stage == "slicing"
        assert SliceError.policy == DROP_LOAD
        assert ScheduleError.policy == DROP_SLICE
        assert CodegenError.stage == "codegen"
        assert VerifyError.policy == ROLLBACK
        for cls in (SliceError, ScheduleError, CodegenError, VerifyError):
            assert issubclass(cls, GuardError)

    def test_stage_errors_cover_pipeline(self):
        for stage in ("slicing", "scheduling", "triggers", "codegen",
                      "verify"):
            assert issubclass(STAGE_ERRORS[stage], GuardError)

    def test_diagnostic_round_trip(self):
        err = SliceError("boom", load_uid=7, function="main")
        diag = Diagnostic.from_error(err)
        assert diag.stage == "slicing"
        assert diag.severity == ERROR
        d = diag.to_dict()
        assert d["load_uid"] == 7 and d["function"] == "main"
        assert d["policy"] == DROP_LOAD

    def test_report_degradation_semantics(self):
        report = GuardReport()
        assert not report.degraded and not report.rolled_back
        warn = Diagnostic(stage="scheduling", error="ScheduleError",
                          severity=WARNING, policy=DROP_LOAD,
                          message="negative slack")
        report.record(warn)
        # Warnings alone never degrade a run (legitimate negative slack).
        assert not report.degraded
        report.record(Diagnostic.from_error(SliceError("bad")))
        assert report.degraded
        report.record_rollback("main", "mismatch")
        assert report.rolled_back
        assert "rolled_back=1" in report.summary()
        assert report.to_dict()["degraded"] is True


# -- recovery boundaries ------------------------------------------------------------


class TestRecoveryBoundary:
    def test_swallows_and_records(self):
        report = GuardReport()
        with recovery_boundary(report, "slicing", load_uid=7,
                               function="main") as outcome:
            raise ValueError("address computation exploded")
        assert not outcome.ok
        assert isinstance(outcome.error, SliceError)
        (diag,) = report.diagnostics
        assert diag.stage == "slicing"
        assert diag.load_uid == 7 and diag.function == "main"
        assert "ValueError" in diag.message

    def test_clean_body_records_nothing(self):
        report = GuardReport()
        with recovery_boundary(report, "slicing") as outcome:
            pass
        assert outcome.ok and not report.diagnostics

    def test_stage_override_on_foreign_guard_error(self):
        # A CodegenError escaping during trigger placement is reported
        # under the stage that actually failed.
        report = GuardReport()
        with recovery_boundary(report, "triggers"):
            raise CodegenError("bad stub")
        assert report.diagnostics[0].stage == "triggers"

    def test_operator_intent_propagates(self):
        report = GuardReport()
        with pytest.raises(KeyboardInterrupt):
            with recovery_boundary(report, "slicing"):
                raise KeyboardInterrupt()
        assert not report.diagnostics

    def test_explicit_propagate_list(self):
        report = GuardReport()
        with pytest.raises(ZeroDivisionError):
            with recovery_boundary(report, "slicing",
                                   propagate=(ZeroDivisionError,)):
                1 // 0


# -- fault injector -----------------------------------------------------------------


class TestFaultInjector:
    def test_parse_forms(self):
        spec = FaultSpec.parse("cache.corrupt")
        assert spec.site == "cache.corrupt" and spec.prob == 1.0
        spec = FaultSpec.parse("cache.corrupt:0.5")
        assert spec.prob == 0.5
        spec = FaultSpec.parse("cache.corrupt:0.5:3")
        assert spec.times == 3

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultSpec.parse("no.such.site")
        with pytest.raises(ValueError):
            FaultSpec.parse("cache.corrupt:2.0")

    def test_deterministic_firing(self):
        def sequence(seed):
            inj = FaultInjector(["cache.corrupt:0.5"], seed=seed)
            return [inj.fires("cache.corrupt") for _ in range(64)]

        assert sequence(1) == sequence(1)
        assert sequence(1) != sequence(2)

    def test_times_cap(self):
        inj = FaultInjector(["cache.corrupt:1.0:2"], seed=0)
        fired = [inj.fires("cache.corrupt") for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_unarmed_site_never_fires(self):
        inj = FaultInjector(["cache.corrupt"], seed=0)
        assert not inj.fires("slice.exception")

    def test_injecting_scope(self):
        assert faultinject.active() is None
        with injecting("slice.exception"):
            with pytest.raises(InjectedFault):
                faultinject.check("slice.exception")
        assert faultinject.active() is None
        # Off: the module-level helpers are no-ops.
        faultinject.check("slice.exception")
        assert not faultinject.fires("slice.exception")


# -- differential verification & rollback -------------------------------------------


def _arc_scan(corruption=None):
    """The Figure 3 kernel with a hand-built chaining adaptation.

    ``corruption``: None (sound), "spec_store" (the p-slice writes
    memory), or "main_drift" (the stub perturbs main-thread state).
    """
    prog = Program(entry="main")
    fb = FunctionBuilder(prog.add_function("main"))
    heap = Heap(1 << 22)
    stride = 64
    nodes = [heap.alloc(64, align=64) for _ in range(50)]
    arcs = heap.alloc(400 * stride, align=64)
    for i in range(400):
        heap.store(arcs + i * stride, nodes[i % len(nodes)])
    for i, node in enumerate(nodes):
        heap.store(node + 16, i)
    out = heap.alloc(8)

    fb.mov_imm(arcs, dest="r50")
    fb.mov_imm(arcs + 400 * stride, dest="r51")
    fb.mov_imm(0, dest="r52")
    fb.chk_c("stub1")
    fb.label("loop")
    u = fb.load("r50", 0)
    pot = fb.load(u, 16)
    fb.add("r52", pot, dest="r52")
    fb.add("r50", imm=stride, dest="r50")
    p = fb.cmp("lt", "r50", "r51")
    fb.br_cond(p, "loop")
    o = fb.mov_imm(out)
    fb.store(o, "r52")
    fb.halt()

    fb.label("stub1")
    fb.lib_store(0, "r50")
    fb.lib_store(1, "r51")
    if corruption == "main_drift":
        fb.add("r52", imm=1, dest="r52")
    fb.spawn("slice1")
    fb.rfi()

    fb.label("slice1")
    fb.lib_load(0, dest="r60")
    fb.lib_load(1, dest="r61")
    fb.mov("r60", dest="r62")
    fb.add("r60", imm=stride, dest="r60")
    fb.lib_store(0, "r60")
    fb.lib_store(1, "r61")
    pc2 = fb.cmp("lt", "r60", "r61")
    fb.emit(Instruction(op="spawn", target="slice1", pred=pc2))
    fb.load("r62", 0, dest="r63")
    if corruption == "spec_store":
        fb.store("r63", "r62")
    fb.prefetch("r63", 16)
    fb.kill()
    prog.finalize()
    return prog


def _reference_scan():
    """The same kernel without any SSP code (the "original binary")."""
    prog = Program(entry="main")
    fb = FunctionBuilder(prog.add_function("main"))
    stride = 64
    heap = Heap(1 << 22)
    nodes = [heap.alloc(64, align=64) for _ in range(50)]
    arcs = heap.alloc(400 * stride, align=64)
    fb.mov_imm(arcs, dest="r50")
    fb.mov_imm(arcs + 400 * stride, dest="r51")
    fb.mov_imm(0, dest="r52")
    fb.label("loop")
    u = fb.load("r50", 0)
    pot = fb.load(u, 16)
    fb.add("r52", pot, dest="r52")
    fb.add("r50", imm=stride, dest="r50")
    p = fb.cmp("lt", "r50", "r51")
    fb.br_cond(p, "loop")
    out = heap.alloc(8)
    o = fb.mov_imm(out)
    fb.store(o, "r52")
    fb.halt()
    prog.finalize()
    return prog


def _scan_heap():
    heap = Heap(1 << 22)
    stride = 64
    nodes = [heap.alloc(64, align=64) for _ in range(50)]
    arcs = heap.alloc(400 * stride, align=64)
    for i in range(400):
        heap.store(arcs + i * stride, nodes[i % len(nodes)])
    for i, node in enumerate(nodes):
        heap.store(node + 16, i)
    heap.alloc(8)
    return heap


class TestDifferentialVerify:
    def test_sound_adaptation_is_equivalent(self):
        report = differential_check(_reference_scan(), _arc_scan(),
                                    _scan_heap)
        assert report.equivalent, report.reason
        assert report.spawned_threads > 0

    def test_catches_speculative_store(self):
        report = differential_check(_reference_scan(),
                                    _arc_scan("spec_store"), _scan_heap)
        assert not report.equivalent
        # The culprit is the slice's home function: per-function rollback.
        assert report.function == "main"
        assert "store" in report.reason

    def test_catches_main_thread_drift(self):
        report = differential_check(_reference_scan(),
                                    _arc_scan("main_drift"), _scan_heap)
        assert not report.equivalent

    def test_tool_verifies_real_adaptation(self):
        _, _, _, result = adapt_workload("mcf", "tiny")
        assert result.adapted is not None
        assert not result.guard.rolled_back
        assert result.guard.adapted_loads > 0

    def test_injected_mismatch_rolls_back(self):
        workload = make_workload("mcf", "tiny")
        program = workload.build_program()
        profile = collect_profile(program, workload.build_heap)
        before = program.disassemble()
        with injecting("verify.mismatch"):
            result = SSPPostPassTool().adapt(
                program, profile, heap_factory=workload.build_heap)
        # Everything the verifier flagged was rolled back; the surviving
        # binary is byte-identical to the unadapted input.
        assert result.adapted is None
        assert result.guard.rolled_back
        assert any(d.stage == "verify" for d in result.guard.diagnostics)
        assert program.disassemble() == before

    def test_corrupted_emitter_output_never_ships(self):
        # A store injected into an emitted p-slice must be caught by
        # validation/verification, never delivered in result.adapted.
        workload = make_workload("mcf", "tiny")
        program = workload.build_program()
        profile = collect_profile(program, workload.build_heap)
        with injecting("codegen.invalid_program"):
            result = SSPPostPassTool().adapt(
                program, profile, heap_factory=workload.build_heap)
        assert result.guard.degraded
        if result.adapted is not None:
            diff = differential_check(program, result.adapted.program,
                                      workload.build_heap)
            assert diff.equivalent


# -- speculative-context containment budgets ----------------------------------------


def _runaway_program():
    """A chaining slice that respawns itself and then spins forever."""
    prog = Program(entry="main")
    fb = FunctionBuilder(prog.add_function("main"))
    heap = Heap(1 << 16)
    out = heap.alloc(8)
    fb.mov_imm(0, dest="r50")
    fb.chk_c("stub1")
    fb.label("loop")
    fb.add("r50", imm=1, dest="r50")
    p = fb.cmp("lt", "r50", imm=200)
    fb.br_cond(p, "loop")
    o = fb.mov_imm(out)
    fb.store(o, "r50")
    fb.halt()

    fb.label("stub1")
    fb.lib_store(0, "r50")
    fb.spawn("slice1")
    fb.rfi()

    fb.label("slice1")
    fb.lib_load(0, dest="r60")
    fb.emit(Instruction(op="spawn", target="slice1"))
    fb.label("spin")
    fb.add("r60", imm=1, dest="r60")
    fb.br("spin")
    prog.finalize()
    return prog, heap, out


class TestContainmentBudgets:
    def test_instruction_budget_kills_runaway_slice(self):
        prog, heap, out = _runaway_program()
        config = dataclasses.replace(make_config("inorder"),
                                     spec_instruction_budget=256)
        stats = simulate(prog, heap, "inorder", config=config)
        assert stats.budget_kills >= 1
        # Main thread unaffected: it ran to completion, correct result.
        assert heap.load(out) == 200

    def test_cycle_budget_kills_long_lived_context(self):
        prog, heap, out = _runaway_program()
        config = dataclasses.replace(make_config("inorder"),
                                     spec_instruction_budget=0,
                                     spec_cycle_budget=100)
        stats = simulate(prog, heap, "inorder", config=config)
        assert stats.budget_kills >= 1
        assert heap.load(out) == 200

    def test_budget_kills_on_ooo_model(self):
        prog, heap, out = _runaway_program()
        config = dataclasses.replace(make_config("ooo"),
                                     spec_instruction_budget=256)
        stats = simulate(prog, heap, "ooo", config=config)
        assert stats.budget_kills >= 1
        assert heap.load(out) == 200

    def test_budget_does_not_fire_on_healthy_workload(self):
        workload = make_workload("mcf", "tiny")
        _, _, _, result = adapt_workload("mcf", "tiny")
        stats = simulate(result.program, workload.build_heap(), "inorder")
        assert stats.budget_kills == 0

    def test_budget_kills_serialise(self):
        from repro.sim.stats import SimStats
        prog, heap, _ = _runaway_program()
        config = dataclasses.replace(make_config("inorder"),
                                     spec_instruction_budget=256)
        stats = simulate(prog, heap, "inorder", config=config)
        round_tripped = SimStats.from_dict(stats.to_dict())
        assert round_tripped.budget_kills == stats.budget_kills
        # Snapshots from before the counter existed read as zero.
        legacy = stats.to_dict()
        del legacy["budget_kills"]
        assert SimStats.from_dict(legacy).budget_kills == 0


# -- degenerate pipeline inputs ------------------------------------------------------


class TestDegenerateInputs:
    def test_empty_program(self):
        prog = Program(entry="main")
        fb = FunctionBuilder(prog.add_function("main"))
        fb.halt()
        prog.finalize()
        profile = collect_profile(prog, lambda: Heap(1 << 12))
        result = SSPPostPassTool().adapt(prog, profile,
                                         heap_factory=lambda: Heap(1 << 12))
        assert result.adapted is None
        assert not result.guard.degraded

    def test_zero_delinquent_loads(self):
        prog = Program(entry="main")
        fb = FunctionBuilder(prog.add_function("main"))
        fb.mov_imm(0, dest="r100")
        fb.label("loop")
        fb.add("r100", imm=1, dest="r100")
        p = fb.cmp("lt", "r100", imm=400)
        fb.br_cond(p, "loop")
        fb.halt()
        prog.finalize()
        profile = collect_profile(prog, lambda: Heap(1 << 12))
        result = SSPPostPassTool().adapt(prog, profile,
                                         heap_factory=lambda: Heap(1 << 12))
        assert result.delinquent_uids == []
        assert result.adapted is None
        assert result.guard.adapted_loads == 0
        assert not result.guard.degraded

    def test_slice_larger_than_region_budget(self):
        # max_slice_size=1 rejects every candidate: a clean no-op, not a
        # crash, and the decision trace explains the rejections.
        workload = make_workload("mcf", "tiny")
        program = workload.build_program()
        profile = collect_profile(program, workload.build_heap)
        result = SSPPostPassTool(ToolOptions(max_slice_size=1)).adapt(
            program, profile, heap_factory=workload.build_heap)
        assert result.adapted is None
        # Rejected loads are accounted as skipped, and a no-op for this
        # structural reason is not a degradation.
        assert result.guard.skipped_loads == len(result.delinquent_uids)
        assert not result.guard.degraded

    def test_single_basic_block_function(self):
        heap0, addrs, out = linked_list_heap(4)
        prog = Program(entry="main")
        fb = FunctionBuilder(prog.add_function("main"))
        # Straight-line: four loads, no loop, so no region to attack.
        r = fb.mov_imm(addrs[0])
        for _ in range(4):
            v = fb.load(r, 0)
            r = fb.load(r, 8)
        o = fb.mov_imm(out)
        fb.store(o, v)
        fb.halt()
        prog.finalize()

        def factory():
            heap, _, _ = linked_list_heap(4)
            return heap

        profile = collect_profile(prog, factory)
        result = SSPPostPassTool().adapt(prog, profile,
                                         heap_factory=factory)
        # Whatever the tool decides, it must not crash and any output
        # must be semantically equivalent.
        if result.adapted is not None:
            diff = differential_check(prog, result.adapted.program,
                                      factory)
            assert diff.equivalent

    def test_slicer_failure_drops_only_that_load(self):
        with injecting("slice.exception:1.0:1"):
            _, _, _, result = adapt_workload("mcf", "tiny")
        # One load lost to the injected fault; the rest still adapted.
        assert result.guard.failed_loads == 1
        assert result.adapted is not None
        assert result.guard.adapted_loads >= 1
