"""Tests for reaching definitions, def-use chains, liveness, dependence
graphs, SCC, call graphs and the region graph."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    CFG,
    ANTI,
    CONTROL,
    FLOW,
    OUTPUT,
    CallGraph,
    DependenceGraph,
    FunctionDataflow,
    RegionGraph,
    block_liveness,
    strongly_connected_components,
)
from repro.isa import FunctionBuilder, Program

from helpers import mcf_like_workload


def simple_loop():
    prog = Program()
    fb = FunctionBuilder(prog.add_function("f"))
    fb.mov_imm(0, dest="r100")          # d1: r100
    fb.mov_imm(10, dest="r101")
    fb.label("loop")
    fb.add("r100", imm=1, dest="r100")  # d2: r100 (carried)
    p = fb.cmp("lt", "r100", "r101")
    fb.br_cond(p, "loop")
    fb.halt()
    func = prog.function("f")
    return prog, func, CFG(func)


class TestDataflow:
    def test_du_chain_straightline(self):
        prog = Program()
        fb = FunctionBuilder(prog.add_function("f"))
        a = fb.mov_imm(1)
        b = fb.add(a, imm=2)
        fb.halt()
        func = prog.function("f")
        df = FunctionDataflow(func, CFG(func))
        instrs = list(func.instructions())
        defs = df.defs_reaching_use(instrs[1].uid, a)
        assert defs == {instrs[0].uid}

    def test_both_defs_reach_around_loop(self):
        prog, func, cfg = simple_loop()
        df = FunctionDataflow(func, cfg)
        instrs = list(func.instructions())
        add = next(i for i in instrs if i.op == "add")
        reaching = df.defs_reaching_use(add.uid, "r100")
        # Both the init mov and the add itself (around the back edge).
        assert len(reaching) == 2
        assert add.uid in reaching

    def test_redefinition_kills(self):
        prog = Program()
        fb = FunctionBuilder(prog.add_function("f"))
        fb.mov_imm(1, dest="r100")
        fb.mov_imm(2, dest="r100")
        use = fb.add("r100", imm=0)
        fb.halt()
        func = prog.function("f")
        df = FunctionDataflow(func, CFG(func))
        instrs = list(func.instructions())
        reaching = df.defs_reaching_use(instrs[2].uid, "r100")
        assert reaching == {instrs[1].uid}

    def test_call_defines_return_register(self):
        prog = Program()
        g = FunctionBuilder(prog.add_function("g"))
        g.ret(g.mov_imm(5))
        fb = FunctionBuilder(prog.add_function("f"))
        r = fb.call_fresh("g")
        fb.halt()
        func = prog.function("f")
        df = FunctionDataflow(func, CFG(func))
        instrs = list(func.instructions())
        call = next(i for i in instrs if i.op == "br.call")
        mov = next(i for i in instrs if i.op == "mov" and i.srcs == ("r8",))
        assert call.uid in df.defs_reaching_use(mov.uid, "r8")


class TestLiveness:
    def test_loop_liveness(self):
        prog, func, cfg = simple_loop()
        live_in, live_out = block_liveness(func, cfg)
        assert "r100" in live_in["loop"]
        assert "r101" in live_in["loop"]
        assert "r100" in live_out["loop"]  # live around the back edge

    def test_dead_after_last_use(self):
        prog = Program()
        fb = FunctionBuilder(prog.add_function("f"))
        a = fb.mov_imm(1)
        fb.label("second")
        fb.mov_imm(2)
        fb.halt()
        func = prog.function("f")
        live_in, _ = block_liveness(func, CFG(func))
        assert a not in live_in["second"]


class TestDependenceGraph:
    def make(self):
        prog, heap, _ = mcf_like_workload(narcs=30, nnodes=10)
        func = prog.function("main")
        return DependenceGraph(func, CFG(func)), func

    def test_flow_edge_kinds(self):
        dg, func = self.make()
        loop = func.block("loop")
        loads = [i for i in loop.instrs if i.op == "ld"]
        # ld u->potential depends on ld t->tail via flow.
        preds = list(dg.preds(loads[1].uid, kinds={FLOW}))
        assert any(e.src == loads[0].uid for e in preds)

    def test_loop_carried_flow_detected(self):
        dg, func = self.make()
        loop = func.block("loop")
        add = next(i for i in loop.instrs
                   if i.op == "add" and i.dest == "r50")
        carried = [e for e in dg.succs(add.uid, kinds={FLOW})
                   if e.loop_carried]
        assert carried, "induction update must carry to the next iteration"

    def test_control_edges_present(self):
        dg, func = self.make()
        loop = func.block("loop")
        branch = loop.instrs[-1]
        controlled = [e.dst for e in dg.succs(branch.uid,
                                              kinds={CONTROL})]
        assert len(controlled) >= 3

    def test_false_dependences_intra_iteration_only(self):
        dg, func = self.make()
        for uid, edges in dg.out_edges.items():
            for e in edges:
                if e.kind in (ANTI, OUTPUT):
                    assert not e.loop_carried

    def test_load_latency_profiled(self):
        prog, heap, _ = mcf_like_workload(narcs=30, nnodes=10)
        func = prog.function("main")
        loads = [i for i in func.instructions() if i.op == "ld"]
        latency_map = {loads[0].uid: 200.0}
        dg = DependenceGraph(func, CFG(func), latency_map)
        assert dg.latency(loads[0].uid) == 200
        assert dg.latency(loads[1].uid) == 2  # default L1

    def test_height_grows_along_chains(self):
        dg, func = self.make()
        loop = func.block("loop")
        uids = {i.uid for i in loop.instrs}
        loads = [i for i in loop.instrs if i.op == "ld"]
        mov = next(i for i in loop.instrs if i.op == "mov")
        assert dg.height(mov.uid, within=uids) > \
            dg.height(loads[1].uid, within=uids)

    def test_available_ilp_low_on_chase(self):
        dg, func = self.make()
        loop = func.block("loop")
        uids = {i.uid for i in loop.instrs}
        # Pointer-chasing slices exhibit little ILP (Section 3.2.1.2.2).
        assert dg.available_ilp(uids) < 3.0


class TestSCC:
    def test_simple_cycle(self):
        graph = {1: [2], 2: [3], 3: [1], 4: [1]}
        sccs = strongly_connected_components([1, 2, 3, 4],
                                             lambda n: graph.get(n, []))
        sizes = sorted(len(c) for c in sccs)
        assert sizes == [1, 3]

    def test_reverse_topological_order(self):
        graph = {1: [2], 2: [], 3: [1]}
        sccs = strongly_connected_components([3, 1, 2],
                                             lambda n: graph.get(n, []))
        order = [c[0] for c in sccs]
        assert order.index(2) < order.index(1) < order.index(3)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 12), st.integers(0, 12)),
                    max_size=40))
    def test_matches_networkx(self, edges):
        nodes = sorted({n for e in edges for n in e} | {0})
        graph = {}
        for src, dst in edges:
            graph.setdefault(src, []).append(dst)
        ours = strongly_connected_components(nodes,
                                             lambda n: graph.get(n, []))
        g = nx.DiGraph()
        g.add_nodes_from(nodes)
        g.add_edges_from(edges)
        theirs = {frozenset(c) for c in nx.strongly_connected_components(g)}
        assert {frozenset(c) for c in ours} == theirs


class TestCallGraph:
    def make_program(self):
        prog = Program()
        c = FunctionBuilder(prog.add_function("leaf"))
        c.ret(c.mov_imm(1))
        b = FunctionBuilder(prog.add_function("mid"))
        b.ret(b.call_fresh("leaf"))
        r = FunctionBuilder(prog.add_function("rec", num_params=1))
        (n,) = r.params(1)
        p = r.cmp("le", n, imm=0)
        r.br_cond(p, "base")
        nm1 = r.sub(n, imm=1)
        r.ret(r.call_fresh("rec", [nm1]))
        r.label("base")
        r.ret(r.mov_imm(0))
        m = FunctionBuilder(prog.add_function("main"))
        m.call("mid")
        m.call("rec", [m.mov_imm(3)])
        m.halt()
        prog.entry = "main"
        return prog

    def test_edges(self):
        cg = CallGraph(self.make_program())
        assert cg.callees("main") == {"mid", "rec"}
        assert cg.callees("mid") == {"leaf"}
        assert cg.callers("leaf") == {"mid"}

    def test_recursion_detected(self):
        cg = CallGraph(self.make_program())
        assert cg.is_recursive("rec")
        assert not cg.is_recursive("mid")
        assert not cg.is_recursive("leaf")

    def test_reachability(self):
        cg = CallGraph(self.make_program())
        assert cg.reachable_from("main") == {"main", "mid", "leaf", "rec"}
        assert cg.reachable_from("mid") == {"mid", "leaf"}

    def test_call_paths(self):
        cg = CallGraph(self.make_program())
        paths = cg.call_paths_to("leaf")
        assert len(paths) == 1
        assert [caller for caller, _ in paths[0]] == ["main", "mid"]

    def test_indirect_profile_resolution(self):
        prog = Program()
        f = FunctionBuilder(prog.add_function("target"))
        f.ret(f.mov_imm(1))
        m = FunctionBuilder(prog.add_function("main"))
        idr = m.mov_imm(0)
        m.call_indirect(idr)
        m.halt()
        prog.entry = "main"
        site = next(i for i in prog.function("main").instructions()
                    if i.op == "br.call.ind")
        cg = CallGraph(prog, {site.uid: {"target": 7}})
        assert cg.callees("main") == {"target"}
        assert cg.call_sites_of("main", "target")[0].count == 7


class TestRegionGraph:
    def test_regions_and_trip_counts(self):
        prog, heap, _ = mcf_like_workload(narcs=40, nnodes=10)
        cg = CallGraph(prog)
        freq = {"main": {"entry": 1, "loop": 40, ".fall1": 1}}
        rg = RegionGraph(prog, cg, freq)
        region = rg.region_of_block("main", "loop")
        assert region.kind == "loop"
        assert region.trip_count == pytest.approx(40.0)
        assert region.parent.kind == "procedure"

    def test_outward_chain_through_call(self):
        prog = Program(entry="main")
        callee = FunctionBuilder(prog.add_function("callee", num_params=1))
        (x,) = callee.params(1)
        callee.ret(callee.load(x, 0))
        m = FunctionBuilder(prog.add_function("main"))
        m.mov_imm(0x2000, dest="r100")
        m.label("loop")
        m.call_fresh("callee", ["r100"])
        m.add("r100", imm=8, dest="r100")
        p = m.cmp("lt", "r100", imm=0x3000)
        m.br_cond(p, "loop")
        m.halt()
        prog.finalize()
        cg = CallGraph(prog)
        rg = RegionGraph(prog, cg)
        proc = rg.proc_region["callee"]
        chain = list(rg.outward_chain(proc))
        names = [r.name for r in chain]
        assert names[0] == "proc:callee"
        # Continues into the unique caller's loop and procedure.
        assert "loop:main:loop" in names
        assert "proc:main" in names

    def test_outward_chain_stops_at_recursion(self):
        prog = Program(entry="main")
        r = FunctionBuilder(prog.add_function("rec", num_params=1))
        (n,) = r.params(1)
        p = r.cmp("le", n, imm=0)
        r.br_cond(p, "base")
        r.call_fresh("rec", [r.sub(n, imm=1)])
        r.ret(n)
        r.label("base")
        r.ret(n)
        m = FunctionBuilder(prog.add_function("main"))
        m.call("rec", [m.mov_imm(3)])
        m.halt()
        prog.finalize()
        rg = RegionGraph(prog, CallGraph(prog))
        chain = list(rg.outward_chain(rg.proc_region["rec"]))
        assert [c.name for c in chain] == ["proc:rec"]
