"""Tests for the file/dir job queue: leases, stealing, at-least-once."""

import json
import os
import time

import pytest

from repro.runner import RunSpec
from repro.service import JobQueue
from repro.tool import ToolOptions


def spec_n(i):
    return RunSpec(workload=f"wl-{i}")


def backdate(path, seconds):
    past = time.time() - seconds
    os.utime(path, (past, past))


@pytest.fixture
def queue(tmp_path):
    return JobQueue(tmp_path / "svc", visibility_timeout=30.0)


class TestSpecRoundTrip:
    @pytest.mark.parametrize("spec", [
        RunSpec(workload="em3d"),
        RunSpec.create("mcf", scale="tiny", model="ooo", variant="ssp"),
        RunSpec.create("health", variant="hand", spawning=False),
        RunSpec.create("vpr", tool_options=ToolOptions(),
                       config_overrides={"l2_size": 1 << 20,
                                         "perfect_load_uids": [3, 1, 2]}),
        RunSpec.create("mst", max_cycles=12345),
    ])
    def test_from_key_preserves_hash(self, spec):
        clone = RunSpec.from_key(json.loads(json.dumps(spec.key())))
        assert clone.content_hash() == spec.content_hash()
        assert clone.label() == spec.label()


class TestSubmission:
    def test_submit_is_idempotent(self, queue):
        digest, new = queue.submit(spec_n(0))
        assert new
        assert queue.submit(spec_n(0)) == (digest, False)
        assert queue.pending_hashes() == [digest]

    def test_done_job_not_reenqueued(self, queue):
        spec = spec_n(0)
        queue.submit(spec)
        lease = queue.claim("w1")
        lease.complete(executed=True, wall_time=1.0, worker="w1")
        assert queue.submit(spec) == (spec.content_hash(), False)
        assert queue.pending_hashes() == []

    def test_resubmit_after_terminal_state(self, queue):
        spec = spec_n(0)
        queue.submit(spec)
        queue.claim("w1").complete(executed=True, worker="w1")
        queue.resubmit(spec)
        assert queue.state_of(spec.content_hash()) == "queued"


class TestClaiming:
    def test_claim_starved_queue(self, queue):
        assert queue.claim("w1") is None

    def test_lease_is_exclusive(self, queue):
        queue.submit(spec_n(0))
        lease = queue.claim("w1")
        assert lease is not None
        assert queue.claim("w2") is None
        lease.release()
        assert queue.claim("w2") is not None

    def test_claim_rebuilds_spec(self, queue):
        spec = RunSpec.create("mcf", scale="tiny", variant="ssp")
        queue.submit(spec)
        lease = queue.claim("w1")
        assert lease.spec.content_hash() == spec.content_hash()
        assert lease.attempt == 1
        assert not lease.stolen

    def test_prefer_biases_order(self, queue):
        specs = [spec_n(i) for i in range(8)]
        for spec in specs:
            queue.submit(spec)
        want = specs[5].content_hash()
        lease = queue.claim("w1", prefer={want})
        assert lease.hash == want

    def test_stale_lease_is_stolen(self, tmp_path):
        queue = JobQueue(tmp_path / "svc", visibility_timeout=5.0)
        queue.submit(spec_n(0))
        first = queue.claim("w1")
        assert queue.claim("w2") is None
        backdate(first.path, 60)
        stolen = queue.claim("w2")
        assert stolen is not None
        assert stolen.stolen
        assert queue.counts()["stale_leases"] == 0

    def test_heartbeat_keeps_lease_live(self, tmp_path):
        queue = JobQueue(tmp_path / "svc", visibility_timeout=5.0)
        queue.submit(spec_n(0))
        lease = queue.claim("w1")
        backdate(lease.path, 60)
        lease.beat(cycle=100_000, stage="simulate")
        assert queue.claim("w2") is None
        assert queue.state_of(lease.hash) == "running"


class TestLifecycle:
    def test_complete_writes_done_record(self, queue):
        spec = spec_n(0)
        queue.submit(spec)
        lease = queue.claim("w1")
        lease.complete(executed=True, wall_time=2.5, worker="w1")
        digest = spec.content_hash()
        assert queue.state_of(digest) == "done"
        record = queue.read_done(digest)
        assert record["ok"] and record["executed"]
        assert record["wall_time"] == 2.5
        assert record["worker"] == "w1"
        assert record["attempts"] == 1
        assert queue.counts() == {"pending": 0, "leased": 0,
                                  "stale_leases": 0, "done": 1,
                                  "failed": 0, "poisoned": 0}

    def test_fail_requeues_until_budget_exhausted(self, tmp_path):
        queue = JobQueue(tmp_path / "svc", max_attempts=2)
        spec = spec_n(0)
        queue.submit(spec)
        lease = queue.claim("w1")
        assert lease.fail("boom 1", worker="w1") is True
        assert queue.state_of(spec.content_hash()) == "queued"
        lease = queue.claim("w2")
        assert lease.attempt == 2
        assert lease.fail("boom 2", worker="w2") is False
        assert queue.state_of(spec.content_hash()) == "failed"
        record = queue.read_done(spec.content_hash())
        assert record["error"] == "boom 2"
        assert record["attempts"] == 2

    def test_state_progression(self, queue):
        spec = spec_n(0)
        digest = spec.content_hash()
        assert queue.state_of(digest) == "missing"
        queue.submit(spec)
        assert queue.state_of(digest) == "queued"
        lease = queue.claim("w1")
        assert queue.state_of(digest) == "running"
        lease.complete(executed=True, worker="w1")
        assert queue.state_of(digest) == "done"

    def test_pending_retired_when_done_elsewhere(self, queue):
        # A pending file left behind after another worker completed the
        # job (crash between done-write and retire) must not re-execute.
        spec = spec_n(0)
        queue.submit(spec)
        lease = queue.claim("w1")
        lease.complete(executed=True, worker="w1")
        queue.ensure()
        (queue.pending_dir / f"{spec.content_hash()}.json").write_text(
            json.dumps({"hash": spec.content_hash(),
                        "spec": spec.key(), "attempts": 0}),
            encoding="utf-8")
        assert queue.claim("w2") is None
        assert queue.pending_hashes() == []


class TestGC:
    def test_reaps_aged_done_records(self, queue):
        spec = spec_n(0)
        queue.submit(spec)
        queue.claim("w1").complete(executed=True, worker="w1")
        assert queue.gc(max_age=9999) == 0
        assert queue.gc(max_age=0, now=time.time() + 100) == 1
        assert queue.read_done(spec.content_hash()) is None

    def test_reaps_orphan_leases_of_retired_jobs(self, tmp_path):
        queue = JobQueue(tmp_path / "svc", visibility_timeout=5.0)
        queue.submit(spec_n(0))
        lease = queue.claim("w1")
        digest = lease.hash
        # Crash after retiring pending but before releasing the lease.
        queue._retire_pending(digest)
        (queue.done_dir / f"{digest}.json").write_text("{}")
        backdate(lease.path, 60)
        assert queue.gc() >= 1
        assert not lease.path.exists()

    def test_live_state_untouched(self, queue):
        queue.submit(spec_n(0))
        queue.submit(spec_n(1))
        queue.claim("w1")
        assert queue.gc(max_age=9999) == 0
        counts = queue.counts()
        # The pending file of a claimed job stays until completion
        # (at-least-once: losing the lease must not lose the job).
        assert counts["pending"] == 2
        assert counts["leased"] == 1
