"""SimStats invariants and serialisation round-tripping."""

import pytest

from repro.sim.caches import MemorySystem
from repro.sim.config import MachineConfig
from repro.sim.machine import simulate
from repro.sim.stats import CYCLE_CATEGORIES, SimStats
from repro.tool import SSPPostPassTool
from repro.profiling import collect_profile
from repro.workloads import make_workload


@pytest.fixture(scope="module")
def ssp_stats():
    """A statistics object with every counter family exercised (spawns,
    prefetches, partial hits) from a real SSP run."""
    workload = make_workload("mcf", "tiny")
    program = workload.build_program()
    profile = collect_profile(program, workload.build_heap)
    result = SSPPostPassTool().adapt(program, profile)
    stats = simulate(result.program, workload.build_heap(), "inorder")
    return stats, result.delinquent_uids


def fresh_stats() -> SimStats:
    return SimStats(MemorySystem(MachineConfig()))


class TestInvariants:
    def test_breakdown_categories_sum_to_cycles(self, ssp_stats):
        stats, _ = ssp_stats
        assert sum(stats.cycle_breakdown.values()) == stats.cycles
        assert set(stats.cycle_breakdown) == set(CYCLE_CATEGORIES)

    def test_ipc_zero_division_guard(self):
        stats = fresh_stats()
        assert stats.cycles == 0
        assert stats.ipc == 0.0

    def test_ipc(self):
        stats = fresh_stats()
        stats.cycles = 100
        stats.main_instructions = 250
        assert stats.ipc == pytest.approx(2.5)

    def test_breakdown_fractions_empty_guard(self):
        fractions = fresh_stats().breakdown_fractions()
        assert sum(fractions.values()) == 0.0


class TestRoundTrip:
    def test_to_dict_is_json_safe(self, ssp_stats):
        import json
        stats, _ = ssp_stats
        encoded = json.dumps(stats.to_dict())
        assert json.loads(encoded) == stats.to_dict()

    def test_round_trip_identical_snapshot(self, ssp_stats):
        stats, _ = ssp_stats
        restored = SimStats.from_dict(stats.to_dict())
        assert restored.to_dict() == stats.to_dict()

    def test_round_trip_preserves_scalars(self, ssp_stats):
        stats, _ = ssp_stats
        restored = SimStats.from_dict(stats.to_dict())
        assert restored.cycles == stats.cycles
        assert restored.ipc == stats.ipc
        assert restored.spawns == stats.spawns
        assert restored.chk_fired == stats.chk_fired
        assert restored.cycle_breakdown == stats.cycle_breakdown
        assert restored.memory.prefetches_issued == \
            stats.memory.prefetches_issued

    def test_round_trip_preserves_figure9_queries(self, ssp_stats):
        stats, uids = ssp_stats
        restored = SimStats.from_dict(stats.to_dict())
        assert restored.delinquent_breakdown(uids) == \
            stats.delinquent_breakdown(uids)
        assert restored.total_miss_cycles() == stats.total_miss_cycles()
        assert restored.top_loads_by_miss_cycles() == \
            stats.top_loads_by_miss_cycles()
        # uid keys survive the str round trip JSON forces on dict keys.
        assert all(isinstance(uid, int)
                   for uid in restored.memory.load_stats)

    def test_round_trip_of_fresh_stats(self):
        stats = fresh_stats()
        assert SimStats.from_dict(stats.to_dict()).to_dict() == \
            stats.to_dict()
