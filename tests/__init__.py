"""Test suite for the SSP reproduction."""
