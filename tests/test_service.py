"""Tests for the batch service: client API, worker, Runner integration.

The headline property, asserted end to end with two real worker
processes: a duplicate-heavy batch submitted twice over a shared
queue+backend yields **exactly one simulation per unique spec hash**,
and the collected ``SimStats`` are byte-identical to a single-host
standalone run.
"""

import json
import multiprocessing
import time
from pathlib import Path

import pytest

from repro.runner import Runner, RunnerTelemetry, RunSpec
from repro.service import (
    JobQueue,
    ServiceClient,
    ServiceConfig,
    ServiceWorker,
    batch_id_for,
)
from repro.sim.caches import MemorySystem
from repro.sim.config import MachineConfig
from repro.sim.stats import SimStats
from repro.tool.cli import main

EMPTY_STATS = SimStats(MemorySystem(MachineConfig())).to_dict()

#: Spec hashes executed by fake_task in this process.
_CALLS = []


def fake_task(spec):
    _CALLS.append(spec.content_hash())
    return {"stats": EMPTY_STATS, "wall_time": 0.25}


def failing_task(spec):
    raise RuntimeError("kaboom")


def flaky_task(spec):
    """Fails on the first attempt; the workload field carries a marker
    path (mirroring test_runner's convention for fake specs)."""
    marker = Path(spec.workload)
    if not marker.exists():
        marker.write_text("attempted")
        raise RuntimeError("transient")
    return {"stats": EMPTY_STATS, "wall_time": 0.1}


def spec_n(i):
    return RunSpec(workload=f"wl-{i}")


def make_client(tmp_path, **overrides):
    options = {"root": tmp_path / "svc", "poll": 0.01}
    options.update(overrides)
    return ServiceClient(config=ServiceConfig(**options))


class TestBatchId:
    def test_content_addressed(self):
        hashes = [spec_n(i).content_hash() for i in range(3)]
        assert batch_id_for(hashes) == batch_id_for(list(reversed(hashes)))
        assert batch_id_for(hashes) == batch_id_for(hashes + hashes[:1])
        assert batch_id_for(hashes) != batch_id_for(hashes[:2])


class TestBatchAPI:
    def test_submit_status_fetch_flow(self, tmp_path):
        client = make_client(tmp_path, inline_worker=False)
        specs = [spec_n(0), spec_n(1), spec_n(0)]
        batch_id = client.submit(specs)
        manifest = client.load_batch(batch_id)
        assert len(manifest["hashes"]) == 2
        assert manifest["enqueued"] == 2
        status = client.status(batch_id)
        assert status["queued"] == 2 and not status["complete"]
        with pytest.raises(RuntimeError):
            client.fetch(batch_id)

        worker = ServiceWorker(client.queue, client.backend,
                               task_fn=fake_task)
        assert worker.drain() == 2
        status = client.status(batch_id)
        assert status["complete"] and status["done"] == 2
        results = client.fetch(batch_id)
        assert [r.spec.content_hash() for r in results] \
            == manifest["hashes"]
        assert all(r.ok for r in results)
        assert results[0].stats.equal_to(
            SimStats.from_dict(EMPTY_STATS))

    def test_resubmitting_batch_is_idempotent(self, tmp_path):
        client = make_client(tmp_path, inline_worker=False)
        specs = [spec_n(0), spec_n(1)]
        first = client.submit(specs)
        assert client.submit(list(reversed(specs))) == first
        assert client.queue.counts()["pending"] == 2

    def test_submit_skips_cached_specs(self, tmp_path):
        client = make_client(tmp_path)
        spec = spec_n(0)
        client.backend.put(spec, EMPTY_STATS, wall_time=1.0)
        batch_id = client.submit([spec])
        manifest = client.load_batch(batch_id)
        assert manifest["enqueued"] == 0
        assert manifest["cached_at_submit"] == 1
        assert client.status(batch_id)["complete"]
        assert client.fetch(batch_id)[0].cached

    def test_unknown_batch_raises(self, tmp_path):
        client = make_client(tmp_path)
        with pytest.raises(KeyError):
            client.status("deadbeef0000")


class TestRunBatch:
    def test_executes_each_unique_spec_once(self, tmp_path):
        client = make_client(tmp_path)
        _CALLS.clear()
        specs = [spec_n(0), spec_n(1), spec_n(0), spec_n(1), spec_n(2)]
        telemetry = RunnerTelemetry()
        results = client.run_batch(specs, telemetry=telemetry,
                                   task_fn=fake_task, timeout=30)
        assert len(results) == 3
        assert all(r.ok and not r.cached for r in results)
        assert len(_CALLS) == len(set(_CALLS)) == 3
        assert telemetry.launched == 3
        assert telemetry.dedupe_hits == 0

    def test_second_client_sees_dedupe_hits(self, tmp_path):
        specs = [spec_n(0), spec_n(1)]
        make_client(tmp_path).run_batch(specs, task_fn=fake_task,
                                        timeout=30)
        _CALLS.clear()
        telemetry = RunnerTelemetry()
        results = make_client(tmp_path).run_batch(
            specs, telemetry=telemetry, task_fn=fake_task, timeout=30)
        assert all(r.ok and r.cached for r in results)
        assert _CALLS == []
        assert telemetry.launched == 0
        assert telemetry.dedupe_hits == 2
        assert telemetry.hit_rate == 1.0

    def test_terminal_failure_surfaces_once(self, tmp_path):
        client = make_client(tmp_path, max_attempts=1)
        telemetry = RunnerTelemetry()
        results = client.run_batch([spec_n(0)], telemetry=telemetry,
                                   task_fn=failing_task, timeout=30)
        assert not results[0].ok
        assert "kaboom" in results[0].error
        assert telemetry.failures == 1

    def test_requeue_then_success(self, tmp_path):
        client = make_client(tmp_path, max_attempts=3)
        marker_spec = RunSpec(workload=str(tmp_path / "marker"))
        results = client.run_batch([marker_spec], task_fn=flaky_task,
                                   timeout=30)
        assert results[0].ok
        record = client.queue.read_done(marker_spec.content_hash())
        assert record["attempts"] == 2


class TestRunnerServiceMode:
    def test_standalone_without_configuration(self):
        assert Runner(cache=None).service is None

    def test_environment_enables_service(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_ROOT", str(tmp_path / "svc"))
        monkeypatch.setenv("REPRO_SERVICE_SHARDS", "3")
        runner = Runner(task_fn=fake_task)
        assert runner.service is not None
        assert runner.service.root == tmp_path / "svc"
        assert runner.cache.kind == "sharded"

    def test_runner_is_submit_plus_wait(self, tmp_path):
        _CALLS.clear()
        config = ServiceConfig(root=tmp_path / "svc", poll=0.01)
        runner = Runner(service=config, task_fn=fake_task)
        specs = [spec_n(0), spec_n(1), spec_n(0)]
        results = runner.run(specs)
        assert len(results) == 3
        assert all(r.ok for r in results)
        assert results[0].stats_dict == results[2].stats_dict
        assert len(_CALLS) == 2
        snap = runner.telemetry.snapshot()
        assert snap["launched"] == 2
        assert snap["cache_backend"]["puts"] == 2
        # A second runner over the same root: pure cache hits.
        second = Runner(service=config, task_fn=fake_task)
        again = second.run(specs)
        assert all(r.cached for r in again)
        assert len(_CALLS) == 2
        assert second.telemetry.cache_hits == 2

    def test_service_stats_match_standalone(self, tmp_path):
        spec = RunSpec.create("treeadd.df", variant="ssp")
        plain = Runner(cache=None).run_one(spec)
        config = ServiceConfig(root=tmp_path / "svc", poll=0.01)
        served = Runner(service=config).run_one(spec)
        assert served.ok
        assert json.dumps(served.stats_dict, sort_keys=True) \
            == json.dumps(plain.stats_dict, sort_keys=True)


def _worker_main(root, worker_id):
    config = ServiceConfig(root=Path(root))
    worker = ServiceWorker(config.make_queue(), config.make_backend(),
                           worker_id=worker_id)
    worker.drain(idle_exit=1.5, poll=0.05)
    worker.write_summary()


class TestTwoWorkerProcesses:
    """The acceptance scenario, scaled to two workloads for test time:
    a duplicate-heavy batch submitted twice concurrently, drained by two
    real worker processes, executes each unique spec exactly once."""

    SPECS = [
        RunSpec.create("treeadd.df", variant="ssp"),
        RunSpec.create("treeadd.bf", variant="ssp"),
    ]

    def test_exactly_one_simulation_per_unique_hash(self, tmp_path):
        root = tmp_path / "svc"
        batch = self.SPECS + self.SPECS  # duplicate-heavy
        config = ServiceConfig(root=root, inline_worker=False,
                               poll=0.02)
        clients = [ServiceClient(config=config) for _ in range(2)]
        batch_ids = [client.submit(batch) for client in clients]
        assert batch_ids[0] == batch_ids[1]

        workers = [
            multiprocessing.Process(target=_worker_main,
                                    args=(str(root), f"test-w{i}"))
            for i in range(2)
        ]
        for proc in workers:
            proc.start()
        try:
            deadline = time.monotonic() + 120
            while not clients[0].status(batch_ids[0])["complete"]:
                assert time.monotonic() < deadline, "batch stalled"
                time.sleep(0.1)
        finally:
            for proc in workers:
                proc.join(timeout=60)
                assert proc.exitcode == 0

        summaries = [json.loads(path.read_text())
                     for path in sorted((root / "workers").glob("*.json"))]
        assert len(summaries) == 2
        executed = sum(s["executed"] for s in summaries)
        assert executed == len(self.SPECS), \
            f"expected exactly one simulation per unique hash: {summaries}"
        assert sum(s["failures"] for s in summaries) == 0

        for spec in self.SPECS:
            record = clients[0].queue.read_done(spec.content_hash())
            assert record["ok"] and record["executed"]
            assert record["attempts"] == 1

        # Golden parity: multi-process service results are byte-identical
        # to a standalone single-host run of the same specs.
        fetched = clients[1].fetch(batch_ids[1])
        standalone = Runner(cache=None).run(self.SPECS)
        for service_result, plain in zip(fetched, standalone):
            assert json.dumps(service_result.stats_dict, sort_keys=True) \
                == json.dumps(plain.stats_dict, sort_keys=True)


class TestServiceCLI:
    def test_submit_worker_status_fetch_roundtrip(self, tmp_path,
                                                  capsys):
        root = str(tmp_path / "svc")
        assert main(["service", "submit", "treeadd.df",
                     "--root", root]) == 0
        batch_id = capsys.readouterr().out.split()[1].rstrip(":")
        assert main(["service", "status", batch_id,
                     "--root", root]) == 1  # incomplete
        capsys.readouterr()
        assert main(["service", "worker", "--root", root]) == 0
        out = capsys.readouterr().out
        assert "1 executed" in out
        assert main(["service", "status", batch_id,
                     "--root", root]) == 0
        results_json = tmp_path / "results.json"
        assert main(["service", "fetch", batch_id, "--root", root,
                     "--json", str(results_json)]) == 0
        out = capsys.readouterr().out
        assert "treeadd.df/small/inorder/ssp" in out
        doc = json.loads(results_json.read_text())
        assert len(doc) == 1 and doc[0]["ok"]
        assert main(["service", "gc", "--root", root]) == 0

    def test_worker_on_empty_queue_exits_cleanly(self, tmp_path,
                                                 capsys):
        assert main(["service", "worker",
                     "--root", str(tmp_path / "svc")]) == 0
        assert "0 job(s)" in capsys.readouterr().out
