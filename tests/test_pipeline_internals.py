"""Deeper timing-model tests: accounting invariants, predication in the
pipelines, lfetch timing semantics, live-in buffer isolation under timing,
and SMT fairness."""

import dataclasses

import pytest

from repro.isa import FunctionBuilder, Heap, Program
from repro.isa.instructions import Instruction
from repro.sim import inorder_config, ooo_config, simulate

from helpers import linked_list_heap, list_sum_program, mcf_like_workload


def run_both(prog_factory):
    out = {}
    for model in ("inorder", "ooo"):
        prog, heap = prog_factory()
        out[model] = simulate(prog, heap, model)
    return out


class TestAccountingInvariants:
    @pytest.mark.parametrize("ssp", [False, True])
    def test_inorder_breakdown_sums_exactly(self, ssp):
        prog, heap, _ = mcf_like_workload(ssp=ssp, narcs=200, nnodes=50)
        stats = simulate(prog, heap, "inorder")
        assert sum(stats.cycle_breakdown.values()) == stats.cycles

    def test_instructions_counted_once(self):
        from repro.isa import FunctionalInterpreter
        heap, addrs, out = linked_list_heap(100)
        prog = list_sum_program(addrs[0], out)
        interp = FunctionalInterpreter(prog, heap)
        interp.run()
        heap2, addrs2, out2 = linked_list_heap(100)
        stats = simulate(list_sum_program(addrs2[0], out2), heap2,
                         "inorder")
        # Timing model retires exactly the architecturally executed count.
        assert stats.main_instructions == interp.steps

    def test_spec_instructions_separate(self):
        prog, heap, _ = mcf_like_workload(ssp=True, narcs=200, nnodes=50)
        stats = simulate(prog, heap, "inorder")
        assert stats.spec_instructions > 0
        base_prog, base_heap, _ = mcf_like_workload(ssp=False, narcs=200,
                                                    nnodes=50)
        base = simulate(base_prog, base_heap, "inorder")
        # chk.c is the only extra main-thread instruction, plus the stub.
        assert stats.main_instructions <= base.main_instructions + 8

    def test_ipc_bounded_by_width(self):
        heap, addrs, out = linked_list_heap(50)
        prog = list_sum_program(addrs[0], out)
        stats = simulate(prog, heap, "inorder",
                         config=inorder_config().with_perfect_memory())
        assert stats.ipc <= inorder_config().issue_width


class TestPredicationTiming:
    def build(self, taken: bool):
        prog = Program(entry="main")
        fb = FunctionBuilder(prog.add_function("main"))
        heap = Heap(1 << 16)
        cell = heap.alloc(8)
        p = fb.cmp("eq", fb.mov_imm(1), imm=1 if taken else 0)
        # A predicated load of a *bogus* address: must only access memory
        # when the predicate is true.
        bogus = fb.mov_imm(heap.alloc(8))
        fb.load(bogus, 0, dest="r100", pred=p)
        fb.store(fb.mov_imm(cell), "r100")
        fb.halt()
        prog.finalize()
        return prog, heap

    def test_false_predicated_load_makes_no_access(self):
        prog, heap = self.build(taken=False)
        stats = simulate(prog, heap, "inorder")
        assert stats.memory.total_accesses() == 0  # stores aside
        prog2, heap2 = self.build(taken=True)
        stats2 = simulate(prog2, heap2, "inorder")
        assert stats2.memory.total_accesses() >= 1


class TestPrefetchTiming:
    def test_lfetch_does_not_block_the_pipeline(self):
        """A prefetch is fire-and-forget: issuing 20 of them costs far
        less than 20 blocking loads."""
        def build(use_prefetch):
            prog = Program(entry="main")
            fb = FunctionBuilder(prog.add_function("main"))
            heap = Heap(1 << 22)
            lines = [heap.alloc(64, align=64) for _ in range(20)]
            sink = fb.mov_imm(0, dest="r100")
            for line in lines:
                base = fb.mov_imm(line)
                if use_prefetch:
                    fb.prefetch(base, 0)
                else:
                    v = fb.load(base, 0)
                    fb.add("r100", v, dest="r100")  # force the stall
            fb.halt()
            prog.finalize()
            return prog, heap

        prog_pf, heap_pf = build(True)
        pf = simulate(prog_pf, heap_pf, "inorder")
        prog_ld, heap_ld = build(False)
        ld = simulate(prog_ld, heap_ld, "inorder")
        assert pf.cycles * 3 < ld.cycles

    def test_prefetch_counted(self):
        prog, heap, _ = mcf_like_workload(ssp=True, narcs=100, nnodes=20)
        stats = simulate(prog, heap, "inorder")
        assert stats.memory.prefetches_issued > 50


class TestLiveInBufferTiming:
    def test_chain_snapshot_isolated_under_timing(self):
        """The LIB snapshot at spawn prevents the parent's later writes
        from leaking into an already-spawned child, even under SMT
        interleaving (the mcf chain would corrupt otherwise: sums match
        the functional run exactly)."""
        prog, heap, out = mcf_like_workload(ssp=True, narcs=300,
                                            nnodes=60)
        simulate(prog, heap, "inorder")
        base_prog, base_heap, base_out = mcf_like_workload(
            ssp=False, narcs=300, nnodes=60)
        simulate(base_prog, base_heap, "inorder")
        assert heap.load(out) == base_heap.load(base_out)


class TestSMTFairness:
    def test_main_thread_priority(self):
        """Speculative threads may not starve the main thread: with
        spec threads spinning, main-thread completion time must stay
        within a small factor of solo execution."""
        def build(spin: bool):
            prog = Program(entry="main")
            fb = FunctionBuilder(prog.add_function("main"))
            heap = Heap(1 << 16)
            if spin:
                fb.chk_c("stub")
            fb.mov_imm(0, dest="r100")
            fb.label("loop")
            fb.add("r100", imm=1, dest="r100")
            p = fb.cmp("lt", "r100", imm=3000)
            fb.br_cond(p, "loop")
            fb.halt()
            if spin:
                fb.label("stub")
                fb.spawn("spinner")
                fb.rfi()
                fb.label("spinner")
                fb.mov_imm(0, dest="r110")
                fb.label("spin")
                fb.add("r110", imm=1, dest="r110")
                q = fb.cmp("lt", "r110", imm=10 ** 9)
                fb.br_cond(q, "spin")
                fb.kill()
            prog.finalize()
            return prog, heap

        prog_solo, heap_solo = build(False)
        solo = simulate(prog_solo, heap_solo, "inorder")
        prog_spin, heap_spin = build(True)
        shared = simulate(prog_spin, heap_spin, "inorder")
        # Main keeps its fetch priority; SMT sharing costs < 2.2x even
        # against a pathological spinner (bundle sharing: 6 -> 3 wide).
        assert shared.cycles < solo.cycles * 2.2


class TestConfigVariants:
    def test_wider_fill_buffer_helps_chaining(self):
        """Chaining threads generate the memory-level parallelism that
        the fill buffer caps: shrinking it to 2 entries throttles the
        prefetch rate of the SSP binary."""
        prog, heap, _ = mcf_like_workload(ssp=True, narcs=300, nnodes=200)
        narrow_cfg = dataclasses.replace(inorder_config(),
                                         fill_buffer_entries=2)
        narrow = simulate(prog, heap, "inorder", config=narrow_cfg)
        prog2, heap2, _ = mcf_like_workload(ssp=True, narcs=300,
                                            nnodes=200)
        wide = simulate(prog2, heap2, "inorder")
        assert wide.cycles < narrow.cycles

    def test_higher_memory_latency_hurts(self):
        prog, heap, _ = mcf_like_workload(narcs=200, nnodes=40)
        slow_cfg = dataclasses.replace(inorder_config(),
                                       memory_latency=500)
        slow = simulate(prog, heap, "inorder", config=slow_cfg,
                        spawning=False)
        prog2, heap2, _ = mcf_like_workload(narcs=200, nnodes=40)
        fast = simulate(prog2, heap2, "inorder", spawning=False)
        assert slow.cycles > fast.cycles * 1.5

    def test_mispredict_penalty_scales(self):
        import random
        def build():
            rng = random.Random(9)
            prog = Program(entry="main")
            fb = FunctionBuilder(prog.add_function("main"))
            heap = Heap(1 << 20)
            data = heap.alloc_array(500, 8)
            for i in range(500):
                heap.store(data + i * 8, rng.randrange(2))
            fb.mov_imm(data, dest="r100")
            fb.mov_imm(data + 500 * 8, dest="r101")
            fb.label("loop")
            v = fb.load("r100", 0)
            p = fb.cmp("eq", v, imm=1)
            fb.br_cond(p, "skip")
            fb.label("skip")
            fb.add("r100", imm=8, dest="r100")
            q = fb.cmp("lt", "r100", "r101")
            fb.br_cond(q, "loop")
            fb.halt()
            prog.finalize()
            return prog, heap

        prog, heap = build()
        cheap_cfg = dataclasses.replace(
            inorder_config().with_perfect_memory(), pipeline_stages=2)
        cheap = simulate(prog, heap, "inorder", config=cheap_cfg)
        prog2, heap2 = build()
        dear_cfg = dataclasses.replace(
            inorder_config().with_perfect_memory(), pipeline_stages=40)
        dear = simulate(prog2, heap2, "inorder", config=dear_cfg)
        assert dear.cycles > cheap.cycles
