"""Tests for the unified observability layer (:mod:`repro.obs`).

Covers the tracer primitives and their null-object twins, the
ContextTrace edge cases, per-delinquent-load prefetch
coverage/accuracy/timeliness attribution end to end, both exporters
(JSONL + Chrome trace), the metrics document and report renderer, the
runner's metrics passthrough across the result cache, and the CLI
surface (``--trace``/``--metrics-json``/``--gantt``/``--telemetry-json``
and the ``report`` subcommand).
"""

import json
from types import SimpleNamespace

import pytest

from repro.obs import (
    NULL_TRACER,
    SIM_PID,
    Tracer,
    chrome_trace_events,
    collect_metrics,
    ensure_tracer,
    jsonl_records,
    render_report,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.tracer import NullTracer
from repro.profiling import collect_profile
from repro.sim import ContextTrace, SimStats, trace_run
from repro.tool import SSPPostPassTool
from repro.tool.cli import main
from repro.workloads import make_workload

#: The post-pass pipeline stages, in order (asserted against span names).
PIPELINE_PASSES = ["profiling", "analysis", "slicing", "scheduling",
                   "triggers", "codegen"]


@pytest.fixture(scope="module")
def observed():
    """One fully-observed treeadd run: profile, adapt, traced simulate."""
    workload = make_workload("treeadd.df", scale="tiny")
    program = workload.build_program()
    profile = collect_profile(program, workload.build_heap)
    tracer = Tracer()
    result = SSPPostPassTool(tracer=tracer).adapt(program, profile)
    assert result.adapted is not None
    heap = workload.build_heap()
    with tracer.span("simulate", category="sim"):
        stats, context_trace = trace_run(result.program, heap)
    workload.check_output(heap)
    return SimpleNamespace(workload=workload, profile=profile,
                           tracer=tracer, result=result, stats=stats,
                           context_trace=context_trace)


class TestTracer:
    def test_span_records_wall_time_and_metrics(self):
        tracer = Tracer()
        with tracer.span("slicing", loads=3) as span:
            span.set(slices=2)
        assert [s.name for s in tracer.spans] == ["slicing"]
        span = tracer.spans[0]
        assert span.metrics == {"loads": 3, "slices": 2}
        assert span.end >= span.start
        assert span.to_dict()["type"] == "span"

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("broken"):
                raise ValueError("boom")
        assert [s.name for s in tracer.spans] == ["broken"]

    def test_events_counters_histograms(self):
        tracer = Tracer()
        tracer.event("spawn", slot=1)
        tracer.counter("spawns").add(2)
        tracer.counter("spawns").add()
        for v in (1.0, 2.0, 3.0, 10.0):
            tracer.histogram("sizes").observe(v)
        assert tracer.events[0]["name"] == "spawn"
        assert tracer.counters_snapshot() == {"spawns": 3}
        hist = tracer.histograms_snapshot()["sizes"]
        assert hist["count"] == 4
        assert hist["min"] == 1.0 and hist["max"] == 10.0
        assert hist["mean"] == 4.0
        assert tracer.histogram("sizes").percentile(0) == 1.0
        assert tracer.histogram("sizes").percentile(100) == 10.0

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", loads=1) as span:
            span.set(more=2)
        NULL_TRACER.event("x")
        NULL_TRACER.counter("c").add(5)
        NULL_TRACER.histogram("h").observe(1.0)
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.events == []
        assert NULL_TRACER.counters_snapshot() == {}
        assert NULL_TRACER.histograms_snapshot() == {}
        assert NULL_TRACER.span_dicts() == []
        assert not NULL_TRACER.enabled

    def test_null_tracer_shares_singletons(self):
        assert NULL_TRACER.counter("a") is NULL_TRACER.counter("b")
        assert NULL_TRACER.histogram("a") is NULL_TRACER.histogram("b")
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")

    def test_ensure_tracer(self):
        tracer = Tracer()
        assert ensure_tracer(tracer) is tracer
        assert ensure_tracer(None) is NULL_TRACER
        assert isinstance(ensure_tracer(None), NullTracer)


class TestContextTraceEdgeCases:
    def test_release_without_occupy_is_ignored(self):
        trace = ContextTrace(2)
        trace.release(1, cycle=10)
        assert trace.intervals[1] == []
        assert trace.thread_count() == 0

    def test_finish_closes_open_intervals(self):
        trace = ContextTrace(3)
        trace.occupy(0, tid=0, cycle=0)
        trace.occupy(2, tid=7, cycle=5)
        trace.finish(100)
        assert trace.intervals[0] == [(0, 0, 100)]
        assert trace.intervals[2] == [(7, 5, 100)]
        assert trace._open == {}

    def test_max_concurrent_with_interleaved_spans(self):
        trace = ContextTrace(4)
        # Main thread does not count as speculative.
        trace.occupy(0, tid=0, cycle=0)
        trace.release(0, 100)
        # slot1: [0,10), slot2: [5,15) overlap; slot3: [20,30) disjoint.
        trace.occupy(1, tid=1, cycle=0)
        trace.occupy(2, tid=2, cycle=5)
        trace.release(1, 10)
        trace.release(2, 15)
        trace.occupy(3, tid=3, cycle=20)
        trace.release(3, 30)
        assert trace.max_concurrent_speculative() == 2
        assert trace.speculative_busy_cycles() == 10 + 10 + 10

    def test_reoccupied_slot_records_both_intervals(self):
        trace = ContextTrace(2)
        trace.occupy(1, tid=1, cycle=0)
        trace.release(1, 10)
        trace.occupy(1, tid=2, cycle=12)
        trace.release(1, 20)
        assert trace.intervals[1] == [(1, 0, 10), (2, 12, 20)]

    def test_note_records_sim_events(self):
        trace = ContextTrace(1)
        trace.note(42, "spawn", slot=1, tid=3)
        assert trace.events == [(42, "spawn", {"slot": 1, "tid": 3})]

    def test_render_gantt_marks_occupancy(self):
        trace = ContextTrace(2)
        trace.occupy(0, tid=0, cycle=0)
        trace.occupy(1, tid=1, cycle=10)
        trace.finish(100)
        chart = trace.render_gantt(width=20)
        assert "main " in chart and "spec1" in chart
        assert "M" in chart and "#" in chart


class TestPrefetchAttribution:
    def test_pass_spans_cover_the_pipeline(self, observed):
        names = [s.name for s in observed.tracer.spans]
        assert names[:len(PIPELINE_PASSES)] == PIPELINE_PASSES
        assert all(s.end >= s.start for s in observed.tracer.spans)

    def test_prefetch_sources_flow_into_the_simulator(self, observed):
        sources = observed.result.program.prefetch_sources
        assert sources, "emitter recorded no prefetch attribution"
        assert set(sources.values()) <= set(observed.result.delinquent_uids)

    def test_coverage_accuracy_timeliness(self, observed):
        metrics = observed.stats.prefetch_metrics(
            observed.result.delinquent_uids)
        assert set(metrics) == set(observed.result.delinquent_uids)
        for row in metrics.values():
            assert 0.0 <= row["coverage"] <= 1.0
            assert 0.0 <= row["accuracy"] <= 1.0
            assert 0.0 <= row["timeliness"] <= 1.0
            assert row["covered_timely"] + row["covered_late"] <= \
                row["prefetches_useful"] + row["l1_misses"]
        # The SSP speedup on treeadd comes from covering the pointer
        # chase: at least one delinquent load must show real coverage.
        assert any(row["coverage"] > 0.5 for row in metrics.values())
        assert any(row["timeliness"] > 0.0 for row in metrics.values())

    def test_stats_roundtrip_preserves_prefetch_data(self, observed):
        blob = json.dumps(observed.stats.to_dict())
        restored = SimStats.from_dict(json.loads(blob))
        uids = observed.result.delinquent_uids
        assert restored.prefetch_metrics(uids) == \
            observed.stats.prefetch_metrics(uids)

    def test_from_dict_tolerates_pre_observability_entries(self):
        # A cache entry written before prefetch attribution existed.
        from repro.sim import MemorySystem
        from repro.sim.config import MachineConfig
        stats = SimStats(MemorySystem(MachineConfig()))
        d = stats.to_dict()
        for key in ("prefetch_stats", "prefetch_sources"):
            d["memory"].pop(key, None)
        restored = SimStats.from_dict(d)
        row = restored.prefetch_metrics([1])[1]
        assert row["coverage"] == 0.0 and row["accuracy"] == 0.0


class TestExporters:
    def test_jsonl_records_schema(self, observed, tmp_path):
        records = jsonl_records(observed.tracer, observed.context_trace,
                                meta={"workload": "treeadd.df"})
        assert records[0]["type"] == "meta"
        assert records[0]["workload"] == "treeadd.df"
        types = {r["type"] for r in records}
        assert {"meta", "span", "context_interval",
                "sim_event"} <= types
        path = tmp_path / "events.jsonl"
        write_jsonl(path, records)
        lines = path.read_text().splitlines()
        assert len(lines) == len(records)
        for line in lines:
            json.loads(line)

    def test_chrome_trace_loads_and_covers_every_context(
            self, observed, tmp_path):
        events = chrome_trace_events(observed.tracer,
                                     observed.context_trace)
        path = tmp_path / "trace.chrome.json"
        write_chrome_trace(path, events)
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        loaded = doc["traceEvents"]
        # One named track (and thus >= 1 event) per hardware context.
        for slot in range(observed.context_trace.num_contexts):
            per_context = [e for e in loaded
                           if e["pid"] == SIM_PID and e["tid"] == slot]
            assert per_context, f"no events for hardware context {slot}"
        # Duration events carry positive durations and the pass names.
        tool_spans = {e["name"] for e in loaded
                      if e["pid"] != SIM_PID and e["ph"] == "X"}
        assert set(PIPELINE_PASSES) <= tool_spans
        assert all(e["dur"] > 0 for e in loaded if e["ph"] == "X")

    def test_chrome_trace_without_context_trace(self, observed):
        events = chrome_trace_events(observed.tracer, None)
        assert all(e["pid"] != SIM_PID for e in events)
        assert any(e["ph"] == "X" for e in events)


class TestMetricsAndReport:
    def test_collect_metrics_document(self, observed):
        doc = collect_metrics(
            "treeadd.df", "tiny", "inorder", profile=observed.profile,
            tool_result=observed.result, stats=observed.stats,
            baseline_cycles=observed.profile.baseline_cycles,
            tracer=observed.tracer)
        json.dumps(doc)  # must be JSON-safe
        assert doc["workload"] == "treeadd.df"
        assert [p["name"] for p in doc["passes"]][:6] == PIPELINE_PASSES
        assert doc["table2"]["slices"] >= 1
        assert doc["slices"][0]["triggers"] >= 1
        loads = doc["delinquent_loads"]
        assert set(loads) == {str(u) for u in
                              observed.result.delinquent_uids}
        for row in loads.values():
            assert "coverage" in row and "profiled_miss_cycles" in row
        assert doc["sim"]["speedup"] > 1.0

    def test_render_report_sections(self, observed):
        doc = collect_metrics(
            "treeadd.df", "tiny", "inorder", profile=observed.profile,
            tool_result=observed.result, stats=observed.stats,
            baseline_cycles=observed.profile.baseline_cycles,
            tracer=observed.tracer)
        text = render_report(doc)
        assert "pipeline passes" in text
        assert "Table 2 material" in text
        assert "coverage / accuracy / timeliness" in text
        for name in PIPELINE_PASSES:
            assert name in text
        assert "speedup" in text

    def test_render_report_minimal_document(self):
        text = render_report({"workload": "x", "scale": "tiny",
                              "model": "inorder"})
        assert "observability report: x" in text


class TestReportPartialDocuments:
    """The renderer must survive any missing, empty or partial section."""

    def test_empty_document(self):
        assert "observability report" in render_report({})

    def test_profile_without_baseline_cycles(self):
        text = render_report({"profile": {"total_miss_cycles": 9}})
        assert "baseline cycles: -" in text

    def test_zero_run_telemetry(self):
        from repro.runner import RunnerTelemetry
        doc = {"workload": "x", "runner": RunnerTelemetry().snapshot()}
        text = render_report(doc)
        assert "runner: 0 simulated" in text
        assert "0% hit rate" in text

    def test_runner_section_missing_newer_keys(self):
        # An old metrics document from before service/resilience mode.
        doc = {"runner": {"launched": 2, "cache_hits": 1}}
        text = render_report(doc)
        assert "runner: 2 simulated" in text
        assert "resilience" not in text

    def test_guard_section_with_bare_diagnostics(self):
        doc = {"guard": {"degraded": True,
                         "diagnostics": [{}]}}  # all keys absent
        text = render_report(doc)
        assert "guard: adapted=0 skipped=0 failed=0" in text
        assert "[?]" in text

    def test_sim_section_with_empty_breakdown(self):
        doc = {"sim": {"cycles": 10, "cycle_breakdown": {}}}
        text = render_report(doc)
        assert "cycles=10" in text
        assert "cycle breakdown" not in text

    def test_empty_histograms_and_profiler(self):
        from repro.obs import CycleProfiler
        doc = {"workload": "x", "histograms": {},
               "profiler": CycleProfiler().to_dict()}
        text = render_report(doc)
        assert "cycle profile" in text

    def test_fleet_section_from_bare_dict(self):
        text = render_report({"fleet": {"root": "/tmp/x"}})
        assert "fleet @ /tmp/x" in text


class TestHistogramPercentileCache:
    def test_percentile_cached_between_observes(self):
        from repro.obs.tracer import Histogram
        hist = Histogram("h")
        for v in (5.0, 1.0, 3.0):
            hist.observe(v)
        assert hist.percentile(100) == 5.0
        # Cached: repeated queries reuse one sorted copy.
        assert hist._sorted is not None
        assert hist.percentile(0) == 1.0

    def test_observe_invalidates_the_cache(self):
        from repro.obs.tracer import Histogram
        hist = Histogram("h")
        hist.observe(1.0)
        assert hist.percentile(100) == 1.0
        hist.observe(10.0)
        assert hist._sorted is None
        assert hist.percentile(100) == 10.0
        summary = hist.summary()
        assert summary["min"] == 1.0 and summary["max"] == 10.0


class TestTelemetryBackendAccumulation:
    def test_empty_until_recorded(self):
        from repro.runner import RunnerTelemetry
        assert RunnerTelemetry().backend_stats is None

    def test_same_backend_keeps_latest_snapshot(self):
        from repro.runner import RunnerTelemetry
        telemetry = RunnerTelemetry()
        telemetry.record_backend_stats({"kind": "local", "hits": 1},
                                       backend_id="a")
        telemetry.record_backend_stats({"kind": "local", "hits": 5},
                                       backend_id="a")
        # Counters are cumulative per backend: latest snapshot wins.
        assert telemetry.backend_stats == {"kind": "local", "hits": 5}

    def test_distinct_backends_accumulate_across_batches(self):
        from repro.runner import RunnerTelemetry
        telemetry = RunnerTelemetry()
        telemetry.record_backend_stats(
            {"kind": "local", "hits": 2, "puts": 1}, backend_id="a")
        telemetry.record_backend_stats(
            {"kind": "shared", "hits": 3, "misses": 4}, backend_id="b")
        merged = telemetry.backend_stats
        assert merged["hits"] == 5
        assert merged["puts"] == 1
        assert merged["misses"] == 4
        assert merged["kind"] == "mixed"
        assert merged["backends"] == 2

    def test_snapshot_carries_merged_stats(self):
        from repro.runner import RunnerTelemetry
        telemetry = RunnerTelemetry()
        telemetry.record_backend_stats({"hits": 1}, backend_id="a")
        telemetry.record_backend_stats({"hits": 2}, backend_id="b")
        assert telemetry.snapshot()["cache_backend"]["hits"] == 3


class TestRunnerMetricsPassthrough:
    def test_ssp_metrics_survive_the_cache(self, tmp_path):
        from repro.runner import ResultCache, Runner, RunSpec
        spec = RunSpec.create("treeadd.df", scale="tiny",
                              model="inorder", variant="ssp")
        cache = ResultCache(root=tmp_path / "cache")
        fresh = Runner(cache=cache).run_one(spec)
        assert not fresh.cached
        assert fresh.metrics["delinquent_uids"]
        prefetch = fresh.metrics["prefetch"]
        assert all(isinstance(k, str) for k in prefetch)
        assert any(row["coverage"] > 0 for row in prefetch.values())
        hit = Runner(cache=cache).run_one(spec)
        assert hit.cached
        assert hit.metrics == fresh.metrics

    def test_base_runs_attach_no_metrics(self, tmp_path):
        from repro.runner import ResultCache, Runner, RunSpec
        spec = RunSpec.create("treeadd.df", scale="tiny",
                              model="inorder", variant="base")
        cache = ResultCache(root=tmp_path / "cache")
        result = Runner(cache=cache).run_one(spec)
        assert result.ok and result.metrics == {}

    def test_telemetry_to_dict(self):
        from repro.runner import RunnerTelemetry
        telemetry = RunnerTelemetry()
        telemetry.record_launch("x")
        telemetry.record_complete("x", 1.5, 1, "abc")
        doc = telemetry.to_dict()
        json.dumps(doc)
        assert doc["summary"]["launched"] == 1
        assert doc["records"][0]["label"] == "x"


class TestCLIObservability:
    def test_trace_and_metrics_flags(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        metrics = tmp_path / "metrics.json"
        gantt = tmp_path / "gantt.txt"
        telemetry = tmp_path / "telemetry.json"
        assert main(["treeadd.df", "--scale", "tiny", "--no-cache",
                     "--trace", str(trace),
                     "--metrics-json", str(metrics),
                     "--gantt", str(gantt),
                     "--telemetry-json", str(telemetry)]) == 0
        out = capsys.readouterr().out
        assert "prefetch effectiveness per delinquent load" in out
        assert "coverage" in out

        for line in trace.read_text().splitlines():
            json.loads(line)
        chrome = trace.with_suffix(".chrome.json")
        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"]
        assert "cycles" in gantt.read_text()
        saved = json.loads(metrics.read_text())
        assert saved["workload"] == "treeadd.df"
        assert saved["delinquent_loads"]
        assert "summary" in json.loads(telemetry.read_text())

    def test_plain_run_still_prints_effectiveness(self, capsys):
        assert main(["treeadd.df", "--scale", "tiny", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "prefetch effectiveness per delinquent load" in out
        assert "timeliness" in out

    def test_report_subcommand(self, capsys):
        assert main(["report", "treeadd.df", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "pipeline passes" in out
        assert "coverage / accuracy / timeliness" in out
        for name in PIPELINE_PASSES:
            assert name in out

    def test_report_from_file(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        assert main(["treeadd.df", "--scale", "tiny", "--no-cache",
                     "--metrics-json", str(metrics)]) == 0
        capsys.readouterr()
        assert main(["report", "--from", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "observability report: treeadd.df" in out
        assert "coverage / accuracy / timeliness" in out

    def test_report_without_workload_prints_usage(self, capsys):
        assert main(["report"]) == 2

    def test_disabled_tool_records_nothing(self):
        # The default tool uses the shared null tracer: nothing global
        # accumulates across adaptations (the zero-overhead guarantee).
        tool = SSPPostPassTool()
        assert tool.tracer is NULL_TRACER
        assert NULL_TRACER.spans == []
