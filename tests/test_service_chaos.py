"""Chaos tests for the service plane: crash, steal, resume, quarantine.

The headline invariants, asserted end to end with real worker processes
dying under an armed fault injector:

* **exactly one effective simulation per unique spec hash** — whatever
  crashes, torn writes and lease steals happen along the way, the shared
  backend converges on one entry per spec and its ``SimStats`` are
  identical to an undisturbed standalone run (modulo rebasing the
  process-global instruction uids, which depend on build order);
* **SIGKILL mid-job is survivable** — a stolen lease resumes from the
  victim's last checkpoint (shared under the service root) and still
  lands on byte-identical stats;
* **at-least-once is not forever** — a job that keeps killing its
  workers is quarantined to ``queue/poisoned/`` with a structured
  diagnostic after ``poison_threshold`` steals, and waiting clients
  treat it as terminal (exit code, not a hang).
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.guard import injecting
from repro.obs import collect_fleet
from repro.obs.fleet import fleet_summary_lines
from repro.resilience import (
    STEP_UNADAPTED,
    ResilienceConfig,
)
from repro.runner import Runner, RunSpec
from repro.service import ServiceClient, ServiceConfig, ServiceWorker
from repro.sim.caches import MemorySystem
from repro.sim.config import MachineConfig
from repro.sim.stats import SimStats
from repro.tool.cli import EXIT_DEADLINE, EXIT_POISONED, main
from repro.workloads import PAPER_ORDER

SRC_DIR = Path(__file__).resolve().parents[1] / "src"

EMPTY_STATS = SimStats(MemorySystem(MachineConfig())).to_dict()


def fake_task(spec):
    return {"stats": EMPTY_STATS, "wall_time": 0.25}


def spec_n(i):
    return RunSpec(workload=f"wl-{i}")


def backdate(path, seconds):
    past = time.time() - seconds
    os.utime(path, (past, past))


def make_client(tmp_path, **overrides):
    options = {"root": tmp_path / "svc", "poll": 0.01}
    options.update(overrides)
    return ServiceClient(config=ServiceConfig(**options))


def _wedge_and_steal(queue, digest, rounds):
    """Simulate ``rounds`` wedged owners: claim, let the lease go stale,
    steal.  Returns the last claim result (a Lease or None)."""
    lease = None
    for i in range(rounds):
        lease = queue.claim(f"wedged-w{i}")
        if lease is None:
            break
        backdate(lease.path, 3600)
    return lease


# ---------------------------------------------------------------------------
# poison quarantine
# ---------------------------------------------------------------------------


class TestPoisonQuarantine:
    def test_threshold_steals_tombstone_the_job(self, tmp_path):
        client = make_client(tmp_path, poison_threshold=2,
                             visibility_timeout=5.0)
        queue = client.queue
        spec = spec_n(0)
        digest, _ = queue.submit(spec)
        # Steal #1 (owner w0 wedged) hands the job to w1; steal #2 hits
        # the threshold and quarantines instead of redelivering.
        assert _wedge_and_steal(queue, digest, 3) is None
        assert queue.state_of(digest) == "poisoned"
        assert queue.counts()["poisoned"] == 1
        assert queue.pending_hashes() == []

        record = queue.read_poisoned(digest)
        assert record["hash"] == digest
        assert record["steals"] == 2
        assert record["poisoned"] > 0
        assert record["last_worker"]  # the displaced owner's identity
        assert "time" in record["last_heartbeat"]

        # Quarantine is terminal: no claim, no re-enqueue via submit.
        assert queue.claim("w9") is None
        assert queue.submit(spec) == (digest, False)
        # ... until an operator explicitly revives it.
        queue.resubmit(spec)
        assert queue.state_of(digest) == "queued"
        assert queue.read_poisoned(digest) is None

    def test_failure_diagnostics_flow_into_tombstone(self, tmp_path):
        client = make_client(tmp_path, poison_threshold=2,
                             visibility_timeout=5.0, max_attempts=5)
        queue = client.queue
        spec = spec_n(0)
        digest, _ = queue.submit(spec)
        lease = queue.claim("w0")
        assert lease.fail("BadThing: kaboom", worker="w0",
                          fault_site="backend.put.partial",
                          traceback_text="Traceback: ...") is True
        assert _wedge_and_steal(queue, digest, 3) is None
        record = queue.read_poisoned(digest)
        assert record["last_error"] == "BadThing: kaboom"
        assert record["last_fault_site"] == "backend.put.partial"
        assert record["traceback"].startswith("Traceback")
        assert record["attempts"] == 1

    def test_wait_treats_poison_as_terminal(self, tmp_path):
        client = make_client(tmp_path, poison_threshold=1,
                             visibility_timeout=5.0, inline_worker=False)
        spec = spec_n(0)
        batch_id = client.submit([spec])
        assert _wedge_and_steal(client.queue, spec.content_hash(), 2) \
            is None
        # The batch is complete around the quarantined job: wait returns
        # (instead of hanging) and fetch surfaces the diagnostic.
        status = client.wait(batch_id, timeout=30)
        assert status["complete"] and status["poisoned"] == 1
        results = client.fetch(batch_id)
        assert not results[0].ok
        assert "poisoned after 1 lease steal(s)" in results[0].error
        assert results[0].metrics["poisoned"]["hash"] \
            == spec.content_hash()

    def test_cli_exit_codes_distinguish_poison_and_deadline(
            self, tmp_path, capsys):
        client = make_client(tmp_path, poison_threshold=1,
                             visibility_timeout=5.0, inline_worker=False)
        root = str(client.root)
        spec = spec_n(0)
        batch_id = client.submit([spec])
        # An untouched batch + --no-worker + a tiny deadline: the wait
        # blows its budget and says so with its own exit code.
        assert main(["service", "wait", batch_id, "--root", root,
                     "--no-worker", "--deadline", "0.3"]) == EXIT_DEADLINE
        assert "deadline exceeded" in capsys.readouterr().err
        # Poison the job: status and wait both turn terminal-poisoned.
        _wedge_and_steal(client.queue, spec.content_hash(), 2)
        assert main(["service", "status", batch_id,
                     "--root", root]) == EXIT_POISONED
        captured = capsys.readouterr()
        assert "1 POISONED" in captured.out
        assert "POISONED" in captured.err  # per-job diagnostic line
        assert main(["service", "wait", batch_id, "--root", root,
                     "--no-worker"]) == EXIT_POISONED
        capsys.readouterr()
        # gc surfaces the quarantine count too.
        assert main(["service", "gc", "--root", root]) == 0
        assert "1 POISONED" in capsys.readouterr().out

    def test_gc_reaps_aged_tombstones(self, tmp_path):
        client = make_client(tmp_path, poison_threshold=1,
                             visibility_timeout=5.0)
        queue = client.queue
        spec = spec_n(0)
        digest, _ = queue.submit(spec)
        _wedge_and_steal(queue, digest, 2)
        assert queue.read_poisoned(digest) is not None
        assert queue.gc(max_age=9999) == 0
        assert queue.read_poisoned(digest) is not None
        assert queue.gc(max_age=1, now=time.time() + 100) >= 1
        assert queue.read_poisoned(digest) is None


# ---------------------------------------------------------------------------
# dead-owner fast path (os.kill(pid, 0) probe)
# ---------------------------------------------------------------------------


_CLAIM_AND_DIE = """
import sys
from pathlib import Path
from repro.service import ServiceConfig
config = ServiceConfig(root=Path(sys.argv[1]))
lease = config.make_queue().claim("short-lived")
assert lease is not None
print(lease.hash)
"""


def _spawn_dead_owner(tmp_path, root):
    """A real process claims a lease, exits, and leaves it dangling."""
    script = tmp_path / "claim_and_die.py"
    script.write_text(_CLAIM_AND_DIE, encoding="utf-8")
    env = dict(os.environ, PYTHONPATH=str(SRC_DIR))
    out = subprocess.run([sys.executable, str(script), str(root)],
                         env=env, capture_output=True, text=True,
                         timeout=60)
    assert out.returncode == 0, out.stderr
    return out.stdout.strip()


class TestDeadOwnerFastPath:
    def test_claim_steals_dead_pid_lease_before_timeout(self, tmp_path):
        # An hour-long visibility timeout: only the pid probe can
        # explain an immediate steal.
        client = make_client(tmp_path, visibility_timeout=3600.0)
        digest, _ = client.queue.submit(spec_n(0))
        assert _spawn_dead_owner(tmp_path, client.root) == digest
        lease = client.queue.claim("rescuer")
        assert lease is not None and lease.stolen
        assert lease.job["steals"] == 1

    def test_gc_reaps_dead_pid_lease_and_counts_the_steal(self, tmp_path):
        client = make_client(tmp_path, visibility_timeout=3600.0,
                             poison_threshold=1)
        digest, _ = client.queue.submit(spec_n(0))
        _spawn_dead_owner(tmp_path, client.root)
        assert client.queue.gc() >= 1
        # poison_threshold=1: the gc reap *is* the quarantining steal.
        assert client.queue.state_of(digest) == "poisoned"
        assert client.queue.read_poisoned(digest)["by"] == "gc"

    def test_live_owner_is_not_probed_as_dead(self, tmp_path):
        client = make_client(tmp_path, visibility_timeout=3600.0)
        client.queue.submit(spec_n(0))
        lease = client.queue.claim("w1")  # this process: alive
        assert client.queue.claim("w2") is None
        assert client.queue.gc() == 0
        lease.release()


# ---------------------------------------------------------------------------
# client backoff
# ---------------------------------------------------------------------------


class TestClientBackoff:
    def test_poll_delay_grows_and_is_bounded(self, tmp_path):
        client = make_client(tmp_path, poll=0.05, poll_max=2.0)
        delays = [client._poll_delay(i, "deadbeef") for i in range(40)]
        assert delays[0] >= 0.05
        assert delays[0] < delays[4] < delays[8]
        assert all(d <= 2.0 * 1.5 for d in delays)  # jitter < 50%
        # Deep idle saturates at the (jittered) ceiling.
        assert delays[-1] >= 2.0

    def test_poll_delay_is_deterministic_per_key(self, tmp_path):
        client = make_client(tmp_path)
        assert client._poll_delay(3, "batch-a") \
            == client._poll_delay(3, "batch-a")
        assert client._poll_delay(3, "batch-a") \
            != client._poll_delay(3, "batch-b")


# ---------------------------------------------------------------------------
# the six service-layer fault sites, one by one
# ---------------------------------------------------------------------------


class TestFaultSites:
    def test_lease_corrupt_falls_back_to_mtime(self, tmp_path):
        client = make_client(tmp_path, visibility_timeout=5.0)
        queue = client.queue
        queue.submit(spec_n(0))
        with injecting("queue.lease.corrupt") as injector:
            lease = queue.claim("w1")
            assert injector.fired["queue.lease.corrupt"] == 1
            assert b"corrupt" in lease.path.read_bytes()
            # Fresh mtime + unreadable payload: still exclusively held
            # (the probe cannot run, so the timeout governs)...
            assert queue.claim("w2") is None
            assert injector.recovered["queue.lease.corrupt"] >= 1
            # ... and a stale mtime is still stealable.
            backdate(lease.path, 60)
            stolen = queue.claim("w3")
            assert stolen is not None and stolen.stolen

    def test_steal_race_loser_yields_and_retries(self, tmp_path):
        client = make_client(tmp_path, visibility_timeout=5.0)
        queue = client.queue
        queue.submit(spec_n(0))
        lease = queue.claim("w1")
        backdate(lease.path, 60)
        with injecting("queue.steal.race:1:1") as injector:
            assert queue.claim("w2") is None  # lost the election
            assert injector.recovered["queue.steal.race"] == 1
            stolen = queue.claim("w2")  # next claim wins
            assert stolen is not None and stolen.stolen

    def test_torn_summary_is_skipped_and_counted(self, tmp_path):
        client = make_client(tmp_path)
        worker = ServiceWorker(client.queue, client.backend,
                               task_fn=fake_task, worker_id="torn-w")
        client.queue.submit(spec_n(0))
        assert worker.drain() == 1
        with injecting("worker.summary.torn") as injector:
            path = worker.write_summary()
            with pytest.raises(ValueError):
                json.loads(path.read_text())
            doc = collect_fleet(config=client.config)
            assert doc["totals"]["torn_summaries"] == 1
            assert doc["workers"] == []
            assert injector.recovered["worker.summary.torn"] == 1
        assert any("torn summary" in line
                   for line in fleet_summary_lines(doc))
        # The crash-safe rewrite heals the view.
        worker.write_summary()
        doc = collect_fleet(config=client.config)
        assert doc["totals"]["torn_summaries"] == 0
        assert [w["worker"] for w in doc["workers"]] == ["torn-w"]

    def test_partial_put_is_quarantined_then_rewritten(self, tmp_path):
        client = make_client(tmp_path)
        spec = spec_n(0)
        with injecting("backend.put.partial:1:1") as injector:
            client.backend.put(spec, EMPTY_STATS, 1.0)
            assert injector.fired["backend.put.partial"] == 1
            # The torn entry is detected, quarantined, and served as a
            # miss — never parsed into garbage results.
            assert client.backend.get(spec) is None
            assert injector.recovered["backend.put.partial"] >= 1
            client.backend.put(spec, EMPTY_STATS, 1.0)
        entry = client.backend.get(spec)
        assert entry is not None and entry["stats"] == EMPTY_STATS

    def test_read_ioerror_is_a_transient_miss(self, tmp_path):
        client = make_client(tmp_path)
        spec = spec_n(0)
        client.backend.put(spec, EMPTY_STATS, 1.0)
        with injecting("backend.read.ioerror:1:1") as injector:
            assert client.backend.get(spec) is None
            assert injector.recovered["backend.read.ioerror"] == 1
            assert client.backend.get(spec) is not None  # transient

    def test_lost_result_is_healed_by_resubmission(self, tmp_path):
        # An ok done record whose backend entry did not survive (torn
        # put) must surface as "lost" and be resubmitted, not hang.
        client = make_client(tmp_path, inline_worker=False)
        spec = spec_n(0)
        batch_id = client.submit([spec])
        worker = ServiceWorker(client.queue, client.backend,
                               task_fn=fake_task)
        with injecting("backend.put.partial"):
            assert worker.step() is not None
        status = client.status(batch_id)
        assert status["lost"] == 1 and not status["complete"]
        client._heal_missing(status, client.load_batch(batch_id))
        assert worker.step() is not None  # re-executes the revived job
        status = client.status(batch_id)
        assert status["complete"] and status["done"] == 1


# ---------------------------------------------------------------------------
# worker.crash: die holding the lease, recover via the dead-pid probe
# ---------------------------------------------------------------------------


class TestWorkerCrashSite:
    def test_crashed_worker_job_is_redelivered(self, tmp_path):
        client = make_client(tmp_path, visibility_timeout=3600.0)
        root = str(client.root)
        digest, _ = client.queue.submit(spec_n(0))
        env = dict(os.environ, PYTHONPATH=str(SRC_DIR))
        script = tmp_path / "crash_worker.py"
        script.write_text(
            "import sys\n"
            "from repro.tool.cli import main\n"
            "sys.exit(main(['service', 'worker', '--root', sys.argv[1],\n"
            "               '--inject', 'worker.crash:1:1',\n"
            "               '--inject-seed', '7']))\n",
            encoding="utf-8")
        out = subprocess.run([sys.executable, str(script), root], env=env,
                             capture_output=True, text=True, timeout=120)
        from repro.service.worker import CRASH_EXIT_STATUS
        assert out.returncode == CRASH_EXIT_STATUS, out.stderr
        # The corpse: a lease naming a dead pid, the job still pending.
        assert list(client.queue.lease_dir.glob("*.lease"))
        assert client.queue.pending_hashes() == [digest]
        # Recovery: the pid probe steals immediately.  The site is armed
        # at probability 0 — in the plan (so the steal is scored as its
        # recovery) but never firing in *this* process.
        with injecting("worker.crash:0") as injector:
            rescuer = ServiceWorker(client.queue, client.backend,
                                    task_fn=fake_task,
                                    worker_id="rescuer")
            assert rescuer.step() == digest
            assert rescuer.stolen == 1
            assert injector.recovered["worker.crash"] >= 1
        assert client.queue.state_of(digest) == "done"


# ---------------------------------------------------------------------------
# degradation ladder under supervisor discipline, at service scope
# ---------------------------------------------------------------------------


class TestServiceLadder:
    def test_oom_walks_job_to_unadapted_and_redirects(self, tmp_path):
        client = make_client(tmp_path, inline_worker=False)
        spec = RunSpec.create("treeadd.df", scale="tiny", variant="ssp")
        batch_id = client.submit([spec])
        worker = ServiceWorker(client.queue, client.backend,
                               resilience=ResilienceConfig())
        # The first three rungs (full, basic, top1) die of injected
        # OOM; the fourth (unadapted) completes.
        with injecting("worker.oom:1:3"):
            assert worker.step() == spec.content_hash()
        assert worker.degraded == 1
        assert worker.ladder == {STEP_UNADAPTED: 1}

        record = client.queue.read_done(spec.content_hash())
        assert record["ok"]
        assert record["ladder_step"] == STEP_UNADAPTED
        assert record["executed_hash"] != spec.content_hash()
        # Honest caching: nothing under the full-capability hash; the
        # client follows the done record's redirect.
        assert client.backend.get(spec) is None
        status = client.status(batch_id)
        assert status["complete"] and status["done"] == 1
        result = client.fetch(batch_id)[0]
        assert result.ok
        assert result.metrics["resilience"]["ladder_step"] \
            == STEP_UNADAPTED
        assert len(result.metrics["resilience"]["reasons"]) == 3
        assert all("oom" in reason for reason
                   in result.metrics["resilience"]["reasons"])


# ---------------------------------------------------------------------------
# SIGKILL mid-job -> lease steal -> resume from checkpoint (satellite d)
# ---------------------------------------------------------------------------


_SERVICE_WORKER = """
import sys
from pathlib import Path
from repro.resilience import ResilienceConfig
from repro.service import ServiceConfig, ServiceWorker
config = ServiceConfig(root=Path(sys.argv[1]))
worker = ServiceWorker(config.make_queue(), config.make_backend(),
                       worker_id=sys.argv[2],
                       resilience=ResilienceConfig(checkpoint_every=2000))
worker.drain()
worker.write_summary()
"""


def _run_service_worker(script, root, worker_id, env):
    out = subprocess.run([sys.executable, str(script), str(root),
                          worker_id], env=env, capture_output=True,
                         text=True, timeout=180)
    assert out.returncode == 0, out.stderr
    return json.loads(
        (Path(root) / "workers" / f"{worker_id}.json").read_text())


class TestSigkillMidJobResume:
    SPEC = RunSpec.create("mcf", scale="tiny", model="inorder",
                          variant="base")

    def test_stolen_lease_resumes_to_identical_stats(self, tmp_path):
        script = tmp_path / "service_worker.py"
        script.write_text(_SERVICE_WORKER, encoding="utf-8")
        env = dict(os.environ, PYTHONPATH=str(SRC_DIR))

        # Golden: the same spec drained undisturbed on a pristine root
        # (its own interpreter, like every run in this test).
        golden_client = make_client(tmp_path / "golden")
        golden_client.submit([self.SPEC])
        _run_service_worker(script, golden_client.root, "golden-w", env)
        golden_entry = golden_client.backend.get(self.SPEC)
        assert golden_entry is not None

        # Victim: SIGKILL as soon as its first checkpoint lands.
        client = make_client(tmp_path / "chaos",
                             visibility_timeout=3600.0)
        client.submit([self.SPEC])
        ckpt_root = client.root / "checkpoints"
        proc = subprocess.Popen(
            [sys.executable, str(script), str(client.root), "victim"],
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        deadline = time.monotonic() + 120
        try:
            while not list(ckpt_root.rglob("*.ckpt")):
                assert proc.poll() is None, \
                    "worker finished before a checkpoint was observed"
                assert time.monotonic() < deadline, \
                    "no checkpoint appeared"
                time.sleep(0.002)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
        assert proc.returncode == -signal.SIGKILL
        assert list(ckpt_root.rglob("*.ckpt")), "checkpoint lost"
        assert list(client.queue.lease_dir.glob("*.lease")), \
            "the victim should die holding its lease"

        # Rescuer: steals through the dead-pid probe (the visibility
        # timeout is an hour) and resumes from the victim's checkpoint.
        summary = _run_service_worker(script, client.root, "rescuer",
                                      env)
        assert summary["stolen_leases"] == 1
        assert summary["resumes"] == 1
        assert summary["executed"] == 1

        digest = self.SPEC.content_hash()
        record = client.queue.read_done(digest)
        assert record["ok"] and record["worker"] == "rescuer"
        assert record["resumed_from_cycle"] > 0
        entry = client.backend.get(self.SPEC)
        assert json.dumps(entry["stats"], sort_keys=True) \
            == json.dumps(golden_entry["stats"], sort_keys=True)
        # A completed run retires its checkpoints.
        assert not list(ckpt_root.rglob("*.ckpt"))


# ---------------------------------------------------------------------------
# the chaos fleet (satellite d): 2 workers, 7 workloads, armed injector
# ---------------------------------------------------------------------------


_CHAOS_WORKER = """
import sys
from pathlib import Path
from repro.guard import faultinject
from repro.guard.faultinject import FaultInjector
from repro.resilience import ResilienceConfig
from repro.service import ServiceConfig, ServiceWorker
root, worker_id, seed = Path(sys.argv[1]), sys.argv[2], int(sys.argv[3])
faultinject.install(FaultInjector(
    ["worker.crash:0.3", "backend.put.partial:0.2"], seed=seed))
# Generous poison threshold: the fleet test asserts convergence under
# random crashes, so crash-driven steals must not tombstone a job
# (quarantine-at-threshold has its own deterministic tests).  The
# threshold matters HERE, on the worker — poisoning is a claim-time
# decision — not just on the driver's client config.
config = ServiceConfig(root=root, poison_threshold=100)
worker = ServiceWorker(config.make_queue(), config.make_backend(),
                       worker_id=worker_id,
                       resilience=ResilienceConfig(checkpoint_every=5000))
worker.drain(idle_exit=0.5, poll=0.05)
worker.write_summary()
"""

#: Seed base for the fleet's per-process injector streams.  Pinned so a
#: failing run is replayable: every respawned worker derives its seed
#: from this base plus its spawn ordinal.
CHAOS_SEED = 20020617


def _rebased_stats(stats):
    """Stats with process-global instruction uids densely renumbered.

    Uid numbering depends on artifact build order within a process: a
    worker that built another workload first numbers this one higher,
    and because the program parse (load uids) is memoised while the
    adaptation (slice uids) is lazy, a worker that touched a workload,
    got faulted off it, did other work and came back can shift the two
    uid families by *different* offsets.  What IS stable is the relative
    order — loads are numbered before their slices, deterministically
    within each family — so mapping the sorted union of uids (table
    keys plus ``prefetch_sources`` values) to dense ranks restores
    byte-comparability across any build history; every other field is
    untouched."""
    doc = json.loads(json.dumps(stats))
    memory = doc.get("memory") or {}
    tables = ("load_stats", "prefetch_stats", "prefetch_sources")
    uids = {int(key) for name in tables
            for key in (memory.get(name) or {})}
    uids |= {int(value) for value
             in (memory.get("prefetch_sources") or {}).values()}
    if not uids:
        return doc
    rank = {uid: i for i, uid in enumerate(sorted(uids))}
    for name in tables:
        table = memory.get(name)
        if table:
            memory[name] = {str(rank[int(key)]): value
                            for key, value in table.items()}
    if memory.get("prefetch_sources"):
        memory["prefetch_sources"] = {
            key: rank[int(value)]
            for key, value in memory["prefetch_sources"].items()}
    return doc


class TestChaosFleet:
    SPECS = [RunSpec.create(name, scale="tiny", variant="ssp")
             for name in PAPER_ORDER]

    def test_fleet_converges_under_crashes_and_torn_writes(self,
                                                           tmp_path):
        from repro.service.worker import CRASH_EXIT_STATUS

        root = tmp_path / "svc"
        script = tmp_path / "chaos_worker.py"
        script.write_text(_CHAOS_WORKER, encoding="utf-8")
        env = dict(os.environ, PYTHONPATH=str(SRC_DIR))
        # A generous poison threshold: this test asserts convergence
        # under random crashes (quarantine-at-threshold has its own
        # deterministic tests above).
        config = ServiceConfig(root=root, inline_worker=False,
                               poll=0.02, visibility_timeout=30.0,
                               poison_threshold=100)
        clients = [ServiceClient(config=config) for _ in range(2)]
        # Duplicate-heavy: both clients submit the same batch.
        batch_ids = [client.submit(self.SPECS) for client in clients]
        assert batch_ids[0] == batch_ids[1]
        manifest = clients[0].load_batch(batch_ids[0])

        def spawn(ordinal):
            return subprocess.Popen(
                [sys.executable, str(script), str(root),
                 f"chaos-w{ordinal}", str(CHAOS_SEED + ordinal)],
                env=env, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL)

        spawned = 2
        live = [spawn(0), spawn(1)]
        exit_codes = []
        deadline = time.monotonic() + 600
        try:
            # Drive until the batch is complete AND the fleet is
            # quiescent.  Completeness alone is not a stopping point: a
            # straggler re-executing a healed duplicate can tear a
            # previously-good entry with its own injected partial put,
            # regressing the batch — the heal loop must outlive the
            # last worker.
            while True:
                # Reap BEFORE polling status: a status snapshot taken
                # while a worker was still alive can be stale by the
                # time the worker exits (it may have torn an entry in
                # between).  Only a status computed with zero live
                # workers is a stable stopping condition.
                still_alive = []
                for proc in live:
                    code = proc.poll()
                    if code is None:
                        still_alive.append(proc)
                    else:
                        exit_codes.append(code)
                live = still_alive
                status = clients[0].status(batch_ids[0])
                # Self-heal lost results (torn backend puts).  A batch
                # can read "complete" while an entry is lost (its ok
                # done record survives the torn put), so completeness
                # only settles things once there is nothing left to
                # heal — otherwise the resubmit above just re-pended a
                # job that still needs a worker.
                clients[0]._heal_missing(status, manifest)
                settled = (status["complete"]
                           and not status.get("missing")
                           and not status.get("lost"))
                if settled and not live:
                    break
                assert time.monotonic() < deadline, \
                    f"chaos fleet stalled: {status}"
                if not settled:
                    # Keep two workers on the job (idle ones exit on
                    # their own once the queue stays empty).
                    while len(live) < 2:
                        assert spawned < 60, "respawn budget exhausted"
                        live.append(spawn(spawned))
                        spawned += 1
                time.sleep(0.2)
        finally:
            for proc in live:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.wait(timeout=30)

        # No orphans: every spawned worker has been reaped, and each
        # exited either cleanly or via the injected crash — nothing
        # else.
        assert len(exit_codes) == spawned
        assert set(exit_codes) <= {0, CRASH_EXIT_STATUS}

        # The chaos invariant: whatever happened in between, exactly
        # one effective simulation per unique spec hash survives, all
        # jobs are ok, nothing was poisoned or lost.
        status = clients[0].status(batch_ids[0])
        assert status["done"] == len(self.SPECS)
        assert status["failed"] == 0 and status["poisoned"] == 0
        for spec in self.SPECS:
            # The backend is the authority: one surviving entry per
            # spec.  A done record may legitimately be absent (a
            # worker that crashed between its backend put and the done
            # write — the batch completes off the entry), but if one
            # exists it must be ok.
            assert clients[0].backend.get(spec) is not None, \
                spec.label()
            record = clients[0].queue.read_done(spec.content_hash())
            assert record is None or record["ok"], record

        # Golden parity: identical SimStats to an undisturbed
        # standalone run — identical timing, identical per-load rows,
        # after rebasing the build-order-dependent uid labels.
        fetched = clients[1].fetch(batch_ids[1])
        standalone = Runner(cache=None).run(self.SPECS)
        for service_result, plain in zip(fetched, standalone):
            assert plain.ok
            assert json.dumps(_rebased_stats(service_result.stats_dict),
                              sort_keys=True) \
                == json.dumps(_rebased_stats(plain.stats_dict),
                              sort_keys=True), \
                service_result.spec.label()

        # The fleet document folds the survivors' fault scorecards.
        doc = collect_fleet(config=config)
        assert doc["schema"] == 2
        if doc.get("faults"):
            assert set(doc["faults"]) <= {"worker.crash",
                                          "backend.put.partial"}
