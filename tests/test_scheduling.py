"""Tests for the chaining/basic SP schedulers and their building blocks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import CFG, CallGraph, DependenceGraph, RegionGraph
from repro.scheduling import (
    BASIC,
    CHAINING,
    BasicScheduler,
    ChainingScheduler,
    best_rotation,
    critical_subslice,
    cumulative_slack,
    list_schedule,
    nondegenerate_nodes,
    reduced_miss_cycles,
    rotate,
    slack_bsp_per_iteration,
    slack_csp_per_iteration,
    slice_sccs,
)
from repro.slicing import ContextSensitiveSlicer, restrict_to_region

from helpers import mcf_like_workload


def mcf_region_slice(latency=None, profiled=False):
    prog, _, _ = mcf_like_workload(narcs=30, nnodes=10)
    func = prog.function("main")
    if profiled:
        latency = {i.uid: 232.0 for i in func.instructions()
                   if i.op == "ld"}
    cfg = CFG(func)
    dgs = {"main": DependenceGraph(func, cfg, latency)}
    cg = CallGraph(prog)
    rg = RegionGraph(prog, cg)
    slicer = ContextSensitiveSlicer(prog, cg, dgs)
    loads = [i for i in func.block("loop").instrs if i.op == "ld"]
    sl = slicer.slice_load_address(loads[1], "main")
    region = rg.region_of_block("main", "loop")
    rs = restrict_to_region(sl, region, rg, dgs)
    region_uids = {i.uid for block in func.blocks
                   if block.label in region.blocks
                   for i in block.instrs}
    return rs, region_uids, dgs["main"], loads


class TestPartitioning:
    def test_nondegenerate_scc_is_induction_cycle(self):
        rs, _, dg, _ = mcf_region_slice()
        sccs = slice_sccs(dg, rs.body_uids)
        nondeg = nondegenerate_nodes(sccs, dg)
        ops = {dg.instr_of[u].op for u in nondeg}
        assert "add" in ops       # arc += stride
        assert "ld" not in ops    # the loads are degenerate

    def test_critical_subslice_closure(self):
        rs, _, dg, _ = mcf_region_slice()
        critical = critical_subslice(dg, rs.body_uids)
        ops = {dg.instr_of[u].op for u in critical}
        assert "add" in ops
        # The dependent loads are after the spawn point (Figure 5).
        load_uids = {u for u in rs.body_uids if dg.instr_of[u].op == "ld"}
        assert not load_uids & critical


class TestRotation:
    def test_identity_when_no_carried_deps(self):
        rs, _, dg, _ = mcf_region_slice()
        straight = [i for i in rs.body if i.op == "ld"]
        assert best_rotation(dg, straight) == 0

    def test_rotation_preserves_multiset(self):
        rs, _, dg, _ = mcf_region_slice()
        body = list(rs.body)
        k = best_rotation(dg, body)
        rotated = rotate(body, k)
        assert sorted(i.uid for i in rotated) == \
            sorted(i.uid for i in body)

    def test_rotation_never_breaks_intra_deps(self):
        rs, _, dg, _ = mcf_region_slice()
        body = list(rs.body)
        k = best_rotation(dg, body)
        pos = {i.uid: p for p, i in enumerate(rotate(body, k))}
        for ins in body:
            for e in dg.succs(ins.uid, kinds={"flow", "control"}):
                if e.loop_carried or e.dst not in pos:
                    continue
                assert pos[e.src] < pos[e.dst]

    @given(st.integers(0, 10))
    def test_rotate_is_cyclic_shift(self, k):
        from repro.isa.instructions import nop
        body = [nop() for _ in range(7)]
        rotated = rotate(body, k % 7)
        assert rotated == body[k % 7:] + body[:k % 7]


class TestListScheduling:
    def test_respects_dependences(self):
        rs, _, dg, _ = mcf_region_slice()
        order = list_schedule(dg, rs.body)
        pos = {i.uid: p for p, i in enumerate(order)}
        for ins in rs.body:
            for e in dg.succs(ins.uid):
                if e.loop_carried or e.dst not in pos:
                    continue
                assert pos[e.src] < pos[e.dst], \
                    f"{dg.instr_of[e.src]} must precede {dg.instr_of[e.dst]}"

    def test_schedules_every_node_exactly_once(self):
        rs, _, dg, _ = mcf_region_slice()
        order = list_schedule(dg, rs.body)
        assert sorted(i.uid for i in order) == \
            sorted(i.uid for i in rs.body)

    def test_placed_nodes_unlock_successors(self):
        rs, _, dg, _ = mcf_region_slice()
        critical = critical_subslice(dg, rs.body_uids)
        rest = [i for i in rs.body if i.uid not in critical]
        order = list_schedule(dg, rest, placed=critical)
        assert len(order) == len(rest)


class TestSlackFormulas:
    def test_slack_csp(self):
        # (height(region) - height(critical) - copy/spawn latency) * i
        per = slack_csp_per_iteration(100, 10, num_live_ins=4)
        assert per == 100 - 10 - (4 + 4)
        assert cumulative_slack(per, 3) == 3 * per

    def test_slack_bsp(self):
        assert slack_bsp_per_iteration(100, 40) == 60.0

    def test_reduced_miss_cycles_ramp(self):
        # slack 10/iter, miss 100/iter, 20 iterations: ramp for 10
        # iterations (10+20+...+100 = 550), then full 100 for the rest.
        value = reduced_miss_cycles(10.0, 20, 100.0)
        assert value == pytest.approx(550 + 10 * 100)

    def test_reduced_miss_cycles_zero_slack(self):
        assert reduced_miss_cycles(0.0, 100, 50.0) == 0.0
        assert reduced_miss_cycles(-5.0, 100, 50.0) == 0.0

    def test_reduced_miss_cycles_saturates_at_trip_count(self):
        full = reduced_miss_cycles(1000.0, 10, 100.0)
        assert full <= 10 * 100.0


class TestChainingScheduler:
    def test_figure5_shape(self):
        rs, region_uids, dg, loads = mcf_region_slice(profiled=True)
        sched = ChainingScheduler().schedule(rs, region_uids)
        assert sched.kind == CHAINING
        critical_ops = [i.op for i in sched.critical]
        noncrit_ops = [i.op for i in sched.noncritical]
        assert "add" in critical_ops       # induction before the spawn
        assert "ld" in noncrit_ops         # loads after the spawn
        assert sched.spawn_pred is not None  # counted loop: predicated
        assert not sched.predicted

    def test_live_ins_cover_reads(self):
        rs, region_uids, dg, _ = mcf_region_slice()
        sched = ChainingScheduler().schedule(rs, region_uids)
        assert "r50" in sched.live_ins
        assert "r51" in sched.live_ins

    def test_positive_slack_with_profiled_latencies(self):
        rs, region_uids, dg, loads = mcf_region_slice(profiled=True)
        sched = ChainingScheduler().schedule(rs, region_uids)
        assert sched.slack_per_iteration > 100

    def test_prefetch_conversion_for_terminal_load(self):
        rs, region_uids, _, _ = mcf_region_slice()
        sched = ChainingScheduler().schedule(rs, region_uids)
        assert sched.prefetch_convert


class TestPrediction:
    def build_list_walk(self):
        """cur = ld cur->next; while cur != 0 — the predicted pattern."""
        from repro.isa import FunctionBuilder, Program
        prog = Program()
        fb = FunctionBuilder(prog.add_function("f"))
        fb.mov_imm(0x2000, dest="r100")
        fb.label("loop")
        v = fb.load("r100", 8)                 # payload (delinquent)
        fb.load("r100", 0, dest="r100")        # cur = cur->next
        p = fb.cmp("ne", "r100", imm=0)
        fb.br_cond(p, "loop")
        fb.halt()
        func = prog.function("f")
        cfg = CFG(func)
        dgs = {"f": DependenceGraph(func, cfg)}
        cg = CallGraph(prog)
        rg = RegionGraph(prog, cg)
        slicer = ContextSensitiveSlicer(prog, cg, dgs)
        load = next(i for i in func.block("loop").instrs
                    if i.op == "ld" and i.imm == 8)
        sl = slicer.slice_load_address(load, "f")
        region = rg.region_of_block("f", "loop")
        rs = restrict_to_region(sl, region, rg, dgs)
        return rs, dgs["f"]

    def test_load_dependent_condition_predicted(self):
        rs, dg = self.build_list_walk()
        sched = ChainingScheduler().schedule(rs)
        assert sched.predicted
        assert sched.spawn_pred is None
        guard = sched.guard
        # Kill when the carried pointer is null (negated 'ne 0').
        assert guard.relation == "eq"
        assert guard.immediate == 0

    def test_guard_register_is_live_in(self):
        rs, dg = self.build_list_walk()
        sched = ChainingScheduler().schedule(rs)
        assert sched.guard.reg in sched.live_ins


class TestBasicScheduler:
    def test_no_spawn_in_basic(self):
        rs, region_uids, _, _ = mcf_region_slice()
        sched = BasicScheduler().schedule(rs, region_uids)
        assert sched.kind == BASIC
        assert sched.critical == []
        assert sched.spawn_pred is None and sched.guard is None

    def test_loop_body_ordered_chain_first(self):
        rs, region_uids, dg, _ = mcf_region_slice()
        sched = BasicScheduler().schedule(rs, region_uids)
        ops = [i.op for i in sched.ordered]
        # Induction advance precedes the loads (prefetch next iteration).
        assert ops.index("add") < ops.index("ld")

    def test_basic_slack_le_chaining_on_mcf(self):
        rs, region_uids, dg, loads = mcf_region_slice(profiled=True)
        basic = BasicScheduler().schedule(rs, region_uids)
        chain = ChainingScheduler().schedule(rs, region_uids)
        assert basic.slack_per_iteration <= chain.slack_per_iteration
