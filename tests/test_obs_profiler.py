"""Tests for the cycle-attribution profiler (:mod:`repro.obs.profiler`).

Covers both run-loop integrations (in-order and OOO), the
no-perturbation guarantee (profiled and unprofiled runs produce
byte-identical statistics), the sampling-overhead budget, the JSON
document and its Perfetto counter tracks, metrics/report embedding, and
the CLI ``--profile`` surface.
"""

import json
import time

import pytest

from repro.obs import (
    CycleProfiler,
    DEFAULT_INTERVAL,
    SIM_PID,
    chrome_trace_events,
    collect_metrics,
    profile_run,
    profiler_counter_events,
    render_profile,
    render_report,
)
from repro.sim.inorder import InOrderSimulator
from repro.tool.cli import main

#: Expected phase names per run loop.
INORDER_PHASES = {"reap", "select", "issue", "account"}
OOO_PHASES = {"fetch", "schedule", "interp", "timing", "account"}


def _fresh_sim(model):
    """A ready-to-run simulator for the health/tiny/ssp spec."""
    from repro.runner.spec import RunSpec
    from repro.runner.worker import artifacts_for, config_for
    from repro.sim.machine import make_simulator
    spec = RunSpec.create("health", scale="tiny", model=model,
                          variant="ssp")
    artifacts = artifacts_for(spec)
    program, heap_workload = artifacts.run_inputs(spec.variant)
    return make_simulator(program, heap_workload.build_heap(), spec.model,
                          config=config_for(spec, artifacts),
                          spawning=spec.effective_spawning)


class TestCycleProfiler:
    @pytest.mark.parametrize("model,phases", [
        ("inorder", INORDER_PHASES),
        ("ooo", OOO_PHASES),
    ])
    def test_samples_phases_and_kinds(self, model, phases):
        stats, prof = profile_run("health", scale="tiny", model=model,
                                  interval=256)
        assert prof.model == model
        assert prof.samples > 0
        assert set(prof.phase_wall) == phases
        assert set(prof.phase_hist) == phases
        assert sum(prof.cycle_kinds.values()) == prof.samples
        assert prof.ticks["main"] > 0
        assert prof.cycles_covered > 0
        assert prof.cycles_per_sec > 0
        assert stats.cycles > 0

    @pytest.mark.parametrize("model", ["inorder", "ooo"])
    def test_profiler_does_not_perturb_the_simulation(self, model):
        plain = _fresh_sim(model).run()
        profiled, _ = profile_run("health", scale="tiny", model=model,
                                  interval=64)
        assert profiled.to_dict() == plain.to_dict()

    def test_overhead_within_budget_at_default_interval(self):
        # Measured overhead at the default interval is well under 5%
        # (the per-iteration cost of the *off* state is one integer
        # compare; samples land every 4096 cycles).  The assertion
        # leaves slack for shared-CI timer noise at smoke scale.
        def best_of(runs, profiled):
            best = float("inf")
            for _ in range(runs):
                sim = _fresh_sim("inorder")
                if profiled:
                    sim.attach_profiler(CycleProfiler())
                t0 = time.perf_counter()
                sim.run()
                best = min(best, time.perf_counter() - t0)
            return best
        plain = best_of(5, profiled=False)
        attached = best_of(5, profiled=True)
        assert attached <= plain * 1.25, (
            f"profiler overhead {attached / plain - 1:.1%} blows the "
            f"budget (plain {plain:.4f}s, profiled {attached:.4f}s)")

    def test_profiler_state_stays_out_of_checkpoints(self):
        # Checkpoints are host-independent; a restored simulator is
        # unprofiled unless a profiler is re-attached.
        assert "_profiler" not in InOrderSimulator._SNAPSHOT_FIELDS
        assert "_prof_next" not in InOrderSimulator._SNAPSHOT_FIELDS

    @pytest.mark.parametrize("model", ["inorder", "ooo"])
    def test_attach_before_restore_survives_kill_resume(self, model):
        # SIGKILL-resume cadence: a supervisor restarts a profiled run
        # by building a fresh simulator, attaching the profiler, and
        # THEN restoring the checkpoint.  attach_profiler on a pristine
        # simulator arms `_prof_next` at cycle 0; without restore()
        # renormalising it, the first run-loop check (`now >=
        # _prof_next`) at the checkpoint's mid-run clock fired a sample
        # storm (or, on a stale far-future sentinel, never sampled
        # again).  Statistics must stay byte-identical and the profiler
        # must keep sampling after resume.
        import pickle
        from repro.obs.profiler import CycleProfiler as Prof

        reference = _fresh_sim(model)
        reference.run()

        victim = _fresh_sim(model)
        victim.attach_profiler(Prof(interval=256))
        snaps = []
        victim.run(checkpoint_every=500,
                   on_checkpoint=lambda sim:
                   snaps.append(pickle.dumps(sim.snapshot()))
                   if not snaps else None)
        assert snaps, "run too short to checkpoint"

        resumed = _fresh_sim(model)
        profiler = Prof(interval=256)
        resumed.attach_profiler(profiler)   # attach BEFORE restore
        resumed.restore(pickle.loads(snaps[0]))
        resumed.run()
        assert resumed.stats.to_dict() == reference.stats.to_dict()
        assert profiler.samples > 0, "profiler went dead after resume"

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            CycleProfiler(interval=0)

    def test_unused_profiler_reports_zeroes(self):
        prof = CycleProfiler()
        assert prof.wall_time == 0.0
        assert prof.cycles_covered == 0
        assert prof.cycles_per_sec == 0.0
        assert prof.phase_fractions() == {}
        assert prof.top_sinks() == []
        doc = prof.to_dict()
        json.dumps(doc)
        assert "cycle profile" in render_profile(doc)


class TestProfileDocument:
    def test_to_dict_is_json_safe_and_complete(self):
        _, prof = profile_run("health", scale="tiny", interval=256)
        doc = prof.to_dict()
        json.dumps(doc)
        assert doc["model"] == "inorder"
        assert doc["samples"] == prof.samples
        assert set(doc["phases"]) == INORDER_PHASES
        assert abs(sum(doc["phase_fractions"].values()) - 1.0) < 1e-9
        assert doc["track"], "expected counter-track points"

    def test_track_decimation(self):
        _, prof = profile_run("health", scale="tiny", interval=64)
        assert len(prof.track) > 4
        doc = prof.to_dict(max_track_points=4)
        assert len(doc["track"]) <= 4
        full = prof.to_dict()
        assert len(full["track"]) == len(prof.track)

    def test_render_lists_sinks_worst_first(self):
        _, prof = profile_run("health", scale="tiny", interval=256)
        text = prof.render()
        assert "top wall-time sinks" in text
        shares = [row[1] for row in prof.top_sinks()]
        assert shares == sorted(shares, reverse=True)

    def test_counter_events_from_live_and_serialized_profiler(self):
        _, prof = profile_run("health", scale="tiny", interval=256)
        live = profiler_counter_events(prof)
        thawed = profiler_counter_events(
            json.loads(json.dumps(prof.to_dict())))
        assert live == thawed
        assert live, "expected counter events"
        assert all(e["ph"] == "C" and e["pid"] == SIM_PID for e in live)
        names = {e["name"] for e in live}
        assert names == {"sim throughput", "instruction ticks"}

    def test_chrome_trace_carries_counter_tracks(self):
        _, prof = profile_run("health", scale="tiny", interval=256)
        events = chrome_trace_events(None, None, profiler=prof)
        counters = [e for e in events if e.get("ph") == "C"]
        assert counters
        # The sim process gets named even without a context trace.
        assert any(e.get("name") == "process_name" for e in events)

    def test_metrics_and_report_embedding(self):
        _, prof = profile_run("health", scale="tiny", interval=256)
        doc = collect_metrics("health", "tiny", "inorder", profiler=prof)
        json.dumps(doc)
        assert doc["profiler"]["samples"] == prof.samples
        text = render_report(doc)
        assert "cycle profile [inorder]" in text
        assert "top wall-time sinks" in text


class TestCLIProfile:
    def test_profile_flag_writes_document(self, tmp_path, capsys):
        out_path = tmp_path / "profile.json"
        assert main(["health", "--scale", "tiny", "--no-cache",
                     "--profile", str(out_path),
                     "--profile-interval", "512"]) == 0
        out = capsys.readouterr().out
        assert "top wall-time sinks" in out
        assert "profile written to" in out
        doc = json.loads(out_path.read_text())
        assert doc["interval"] == 512
        assert doc["samples"] > 0
        assert set(doc["phases"]) == INORDER_PHASES

    def test_profile_with_trace_adds_counter_tracks(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        assert main(["health", "--scale", "tiny", "--no-cache",
                     "--profile", str(tmp_path / "p.json"),
                     "--profile-interval", "512",
                     "--trace", str(trace)]) == 0
        chrome = json.loads(
            trace.with_suffix(".chrome.json").read_text())
        counters = [e for e in chrome["traceEvents"]
                    if e.get("ph") == "C"]
        assert counters

    def test_profile_on_the_ooo_model(self, tmp_path, capsys):
        out_path = tmp_path / "profile.json"
        assert main(["health", "--scale", "tiny", "--model", "ooo",
                     "--no-cache", "--profile", str(out_path),
                     "--profile-interval", "512"]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["model"] == "ooo"
        assert set(doc["phases"]) == OOO_PHASES
