"""Chaos suite: every fault-injection site forced at probability 1.0.

For each site the CLI and a runner batch over all seven paper workloads
must complete without an unhandled exception, emit structured diagnostics
for what was lost, and fall back to the unadapted binary where the
adaptation degraded to nothing.  See README "Robustness & failure modes".
"""

import pytest

from repro.guard import SITES, injecting
from repro.guard.faultinject import describe_sites
from repro.runner import ResultCache, Runner, RunSpec
from repro.runner.worker import clear_artifact_cache
from repro.tool.cli import main
from repro.workloads import PAPER_ORDER

#: Sites whose failure degrades the *adaptation pipeline* (diagnostics
#: land on the GuardReport) as opposed to the runner / cache layers.
PIPELINE_SITES = ("slice.exception", "schedule.negative_slack",
                  "codegen.invalid_program", "verify.mismatch")
RUNNER_SITES = ("runner.worker_crash", "runner.worker_timeout")
CACHE_SITES = ("cache.corrupt", "cache.truncate")
RESILIENCE_SITES = ("checkpoint.corrupt", "worker.hang", "worker.oom")
# Service-plane sites (fleet chaos); exercised end to end in
# tests/test_service_chaos.py, registry-checked here.
SERVICE_SITES = ("queue.lease.corrupt", "queue.steal.race",
                 "worker.crash", "worker.summary.torn",
                 "backend.put.partial", "backend.read.ioerror")


@pytest.fixture(autouse=True)
def _fresh_artifacts():
    # The per-process artifact memo is not keyed on the injector state;
    # a poisoned (or clean) adaptation must never leak across tests.
    clear_artifact_cache()
    yield
    clear_artifact_cache()


def test_site_registry_is_complete():
    assert set(SITES) == set(PIPELINE_SITES + RUNNER_SITES + CACHE_SITES
                             + RESILIENCE_SITES + SERVICE_SITES)
    assert len(describe_sites()) == len(SITES)


class TestCLIChaos:
    @pytest.mark.parametrize("site", sorted(SITES))
    def test_cli_survives_site(self, site, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["mcf", "--scale", "tiny", "--inject", site])
        assert code in (0, 1, 3, 4)

    def test_exit_code_degraded(self, capsys):
        assert main(["mcf", "--scale", "tiny", "--no-cache",
                     "--inject", "slice.exception"]) == 3
        assert "[guard]" in capsys.readouterr().out

    def test_exit_code_rolled_back(self, capsys):
        assert main(["mcf", "--scale", "tiny", "--no-cache",
                     "--inject", "verify.mismatch"]) == 4

    def test_inject_list(self, capsys):
        assert main(["--inject", "list"]) == 0
        out = capsys.readouterr().out
        assert "cache.corrupt" in out and "verify.mismatch" in out

    def test_inject_rejects_unknown_site(self, capsys):
        assert main(["mcf", "--inject", "no.such.site"]) == 2

    def test_injector_never_leaks(self):
        from repro.guard import faultinject
        main(["mcf", "--scale", "tiny", "--no-cache",
              "--inject", "slice.exception"])
        assert faultinject.active() is None


class TestRunnerBatchChaos:
    def _batch(self):
        return [RunSpec.create(name, scale="tiny", model="inorder",
                               variant="ssp") for name in PAPER_ORDER]

    @pytest.mark.parametrize("site", PIPELINE_SITES)
    def test_pipeline_site_degrades_to_fallback(self, site):
        # Adaptation fails (or rolls back) for every workload, so every
        # spec simulates the unadapted binary — all runs succeed.
        runner = Runner(jobs=1, cache=None)
        with injecting(site):
            results = runner.run(self._batch())
        assert len(results) == len(PAPER_ORDER)
        for result in results:
            assert result.error is None, result.error
            assert result.stats is not None and result.stats.cycles > 0

    @pytest.mark.parametrize("site", RUNNER_SITES)
    def test_runner_site_records_failures(self, site):
        # Every attempt dies inside the worker; the batch still completes
        # and each result carries a structured error, never an exception.
        runner = Runner(jobs=1, cache=None, retries=0)
        with injecting(site):
            results = runner.run(self._batch())
        assert len(results) == len(PAPER_ORDER)
        for result in results:
            assert result.stats is None
            assert "injected fault" in result.error

    @pytest.mark.parametrize("site", CACHE_SITES)
    def test_cache_site_quarantines_and_recovers(self, site, tmp_path):
        cache = ResultCache(root=tmp_path)
        spec = RunSpec.create("mcf", scale="tiny", model="inorder",
                              variant="ssp")
        clean = Runner(jobs=1, cache=cache).stats(spec)
        assert cache.get(spec) is not None
        with injecting(site):
            chaos = Runner(jobs=1, cache=cache).stats(spec)
        # The damaged entry was quarantined and the spec re-simulated to
        # the same answer; the .bad file is kept for post-mortems.
        assert chaos.cycles == clean.cycles
        bad = list(tmp_path.rglob("*.json.bad"))
        assert len(bad) == 1
        info = cache.stats()
        assert any(gen["quarantined"] == 1
                   for gen in info["generations"])
        # The re-simulated result was re-stored for the next lookup.
        assert cache.get(spec) is not None

    def test_structured_diagnostics_surface_in_batch(self):
        from repro.runner.worker import artifacts_for
        spec = RunSpec.create("mcf", scale="tiny", model="inorder",
                              variant="ssp")
        with injecting("slice.exception"):
            Runner(jobs=1, cache=None).run([spec])
            guard = artifacts_for(spec).tool_result.guard
        assert guard.degraded
        assert all(d.stage == "slicing" for d in guard.diagnostics)
        assert {d.load_uid for d in guard.diagnostics}.issubset(
            set(artifacts_for(spec).tool_result.delinquent_uids))
