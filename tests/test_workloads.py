"""Tests for the benchmark workloads and their determinism guarantees."""

import pytest

from repro.isa import FunctionalInterpreter
from repro.sim import simulate
from repro.workloads import (
    PAPER_ORDER,
    Workload,
    make_workload,
    workload_names,
)

ALL_NAMES = PAPER_ORDER + ["mcf.hand", "health.hand"]


class TestRegistry:
    def test_all_paper_benchmarks_registered(self):
        names = workload_names()
        for name in PAPER_ORDER:
            assert name in names

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_workload("specfp-art")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            make_workload("mcf", scale="galactic")

    def test_descriptions_and_suites(self):
        for name in PAPER_ORDER:
            w = make_workload(name, "tiny")
            assert w.description
            assert w.suite in ("Olden", "SPEC CPU2000")


class TestDeterminism:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_heap_layout_replays_exactly(self, name):
        w = make_workload(name, "tiny")
        h1 = w.build_heap()
        h2 = w.build_heap()
        assert h1.brk == h2.brk
        # Spot-check a spread of words.
        for addr in range(0x1000, min(h1.brk, 0x1000 + 4096), 64):
            assert h1.load(addr) == h2.load(addr)

    def test_program_cached(self):
        w = make_workload("mcf", "tiny")
        assert w.build_program() is w.build_program()

    def test_two_instances_same_layout(self):
        a = make_workload("em3d", "tiny")
        b = make_workload("em3d", "tiny")
        assert a.layout["head"] == b.layout["head"]
        assert a.layout["expected"] == b.layout["expected"]


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_kernel_computes_expected(self, name):
        w = make_workload(name, "tiny")
        prog = w.build_program()
        heap = w.build_heap()
        FunctionalInterpreter(prog, heap).run()
        w.check_output(heap)

    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_memory_bound_on_inorder(self, name):
        """All seven are pointer-intensive: the L3/memory stall category
        dominates the in-order baseline (the paper's premise)."""
        w = make_workload(name, "tiny")
        stats = simulate(w.build_program(), w.build_heap(), "inorder",
                         spawning=False)
        assert stats.cycle_breakdown["L3"] > 0.4 * stats.cycles, \
            f"{name} is not memory bound enough to be interesting"

    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_has_trigger_nop(self, name):
        """Every kernel leaves at least one scheduling nop for chk.c."""
        w = make_workload(name, "tiny")
        assert any(i.op == "nop"
                   for i in w.build_program().instructions())


class TestHandAdaptations:
    @pytest.mark.parametrize("name", ["mcf.hand", "health.hand"])
    def test_hand_binaries_spawn_and_stay_correct(self, name):
        w = make_workload(name, "tiny")
        heap = w.build_heap()
        stats = simulate(w.build_program(), heap, "inorder")
        w.check_output(heap)
        assert stats.chk_fired >= 1
        assert stats.spawns >= 1

    def test_hand_mcf_beats_baseline(self):
        hand = make_workload("mcf.hand", "tiny")
        base = make_workload("mcf", "tiny")
        base_stats = simulate(base.build_program(), base.build_heap(),
                              "inorder", spawning=False)
        hand_stats = simulate(hand.build_program(), hand.build_heap(),
                              "inorder")
        assert hand_stats.cycles < base_stats.cycles

    def test_hand_disabled_matches_baseline_result(self):
        """With spawning off, hand binaries degrade to the plain kernel."""
        hand = make_workload("health.hand", "tiny")
        heap = hand.build_heap()
        simulate(hand.build_program(), heap, "inorder", spawning=False)
        hand.check_output(heap)


class TestScales:
    def test_scales_grow(self):
        tiny = make_workload("mcf", "tiny")
        small = make_workload("mcf", "small")
        assert small.narcs > tiny.narcs

    def test_base_class_requires_overrides(self):
        class Incomplete(Workload):
            name = "incomplete"

        w = Incomplete(scale="tiny")
        with pytest.raises(NotImplementedError):
            w.build_heap()
