"""Unit tests for the instruction layer."""

import pytest

from repro.isa import Instruction, alu, cmp, load, mov, nop, prefetch, store
from repro.isa.instructions import (
    ALU_OPS,
    BRANCH_OPS,
    FIXED_LATENCY,
    OP_BR,
    OP_BR_COND,
    OP_CALL,
    OP_CHK_C,
    OP_HALT,
    OP_KILL,
    OP_RET,
    OP_RFI,
)


class TestConstruction:
    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            Instruction(op="frobnicate")

    def test_cmp_requires_relation(self):
        with pytest.raises(ValueError):
            Instruction(op="cmp", dest="p1", srcs=("r1", "r2"))

    def test_alu_helper_rejects_non_alu(self):
        with pytest.raises(ValueError):
            alu("mov", "r1", "r2")

    def test_alu_helper_needs_second_operand(self):
        with pytest.raises(ValueError):
            alu("add", "r1", "r2", b=None, imm=None)

    def test_mov_needs_exactly_one_operand(self):
        with pytest.raises(ValueError):
            mov("r1")
        with pytest.raises(ValueError):
            mov("r1", src="r2", imm=3)

    def test_cmp_helper_needs_second_operand(self):
        with pytest.raises(ValueError):
            cmp("lt", "p1", "r1")

    def test_uids_are_unique(self):
        uids = {nop().uid for _ in range(100)}
        assert len(uids) == 100

    def test_copy_gets_fresh_uid_and_same_operands(self):
        original = load("r1", "r2", 16)
        dup = original.copy()
        assert dup.uid != original.uid
        assert (dup.op, dup.dest, dup.srcs, dup.imm) == \
            (original.op, original.dest, original.srcs, original.imm)


class TestClassification:
    def test_branch_ops_flagged(self):
        for op in (OP_BR, OP_BR_COND, OP_CALL, OP_RET):
            instr = Instruction(op=op, target="x" if op != OP_RET else None)
            assert instr.is_branch

    def test_memory_classification(self):
        assert load("r1", "r2").is_load
        assert load("r1", "r2").is_memory
        assert store("r1", "r2").is_store
        assert prefetch("r1").is_memory
        assert not prefetch("r1").is_load

    def test_terminators(self):
        assert Instruction(op=OP_BR, target="x").is_terminator
        assert Instruction(op=OP_HALT).is_terminator
        assert Instruction(op=OP_KILL).is_terminator
        assert Instruction(op=OP_RFI).is_terminator
        assert not Instruction(op=OP_BR_COND, target="x").is_terminator
        assert not load("r1", "r2").is_terminator

    def test_reads_include_qualifying_predicate(self):
        instr = load("r1", "r2", pred="p3")
        assert "p3" in instr.reads
        assert "r2" in instr.reads

    def test_writes(self):
        assert load("r1", "r2").writes == ("r1",)
        assert store("r1", "r2").writes == ()


class TestLatencies:
    def test_every_non_load_op_has_a_latency(self):
        for op in ALU_OPS | BRANCH_OPS:
            assert op in FIXED_LATENCY

    def test_mul_slower_than_add(self):
        assert FIXED_LATENCY["mul"] > FIXED_LATENCY["add"]

    def test_fixed_latency_accessor(self):
        assert alu("mul", "r1", "r2", "r3").fixed_latency() == 3
        assert nop().fixed_latency() == 1


class TestText:
    def test_str_contains_operands(self):
        text = str(load("r1", "r2", 16))
        assert "ld" in text and "r1" in text and "r2" in text

    def test_str_shows_predicate(self):
        assert str(mov("r1", imm=5, pred="p2")).startswith("(p2)")

    def test_str_shows_relation(self):
        assert "cmp.lt" in str(cmp("lt", "p1", "r1", "r2"))
