"""Tests for the assembler round-trip, the adapted-binary verifier, and
context-occupancy tracing."""

import pytest

from repro.codegen import (
    VerificationError,
    is_well_formed,
    verify_adapted_binary,
)
from repro.isa import (
    AsmError,
    FunctionBuilder,
    Program,
    load_program,
    parse_assembly,
    round_trip,
    save_program,
)
from repro.profiling import collect_profile
from repro.sim import simulate, trace_run
from repro.tool import SSPPostPassTool
from repro.workloads import make_workload


@pytest.fixture(scope="module")
def adapted_mcf():
    w = make_workload("mcf", "tiny")
    prog = w.build_program()
    profile = collect_profile(prog, w.build_heap)
    result = SSPPostPassTool().adapt(prog, profile)
    return w, prog, result


class TestAssembler:
    def test_round_trip_preserves_instructions(self, adapted_mcf):
        _, _, result = adapted_mcf
        rt = round_trip(result.program)
        assert len(rt.code) == len(result.program.code)
        for a, b in zip(result.program.code, rt.code):
            assert (a.op, a.dest, a.srcs, a.imm, a.pred, a.relation) == \
                (b.op, b.dest, b.srcs, b.imm, b.pred, b.relation)

    def test_round_trip_preserves_branch_targets(self, adapted_mcf):
        _, _, result = adapted_mcf
        rt = round_trip(result.program)
        assert rt.branch_target == result.program.branch_target

    def test_round_trip_behaviourally_identical(self, adapted_mcf):
        w, _, result = adapted_mcf
        rt = round_trip(result.program)
        h1, h2 = w.build_heap(), w.build_heap()
        s1 = simulate(result.program, h1, "inorder")
        s2 = simulate(rt, h2, "inorder")
        assert s1.cycles == s2.cycles
        w.check_output(h2)

    def test_save_and_load(self, adapted_mcf, tmp_path):
        w, _, result = adapted_mcf
        path = tmp_path / "mcf_ssp.s"
        save_program(result.program, str(path))
        loaded = load_program(str(path))
        assert len(loaded.code) == len(result.program.code)

    def test_parse_minimal_program(self):
        text = """
        .func main (0 params)
        entry:
            mov r40, 7        ; a comment
            add r41, r40, 1
            halt
        """
        prog = parse_assembly(text).finalize()
        instrs = list(prog.instructions())
        assert [i.op for i in instrs] == ["mov", "add", "halt"]
        assert instrs[0].imm == 7

    def test_parse_predicated_and_cmp(self):
        text = """
        .func main (0 params)
        entry:
            cmp.lt p1, r40, r41
            (p1)br.cond entry
            halt
        """
        prog = parse_assembly(text).finalize()
        instrs = list(prog.instructions())
        assert instrs[0].relation == "lt"
        assert instrs[1].pred == "p1"

    @pytest.mark.parametrize("bad", [
        "frobnicate r1",
        ".func f (1 params)\nentry:\ncmp.zz p1, r1, r2",
        "mov r40, 7",  # code before any .func
        ".func f (0 params)\nentry:\nadd 5, r1, r2",  # dest not a register
    ])
    def test_parse_errors(self, bad):
        with pytest.raises(AsmError):
            parse_assembly(bad)


class TestVerifier:
    def test_tool_output_verifies(self, adapted_mcf):
        _, _, result = adapted_mcf
        counts = verify_adapted_binary(result.program)
        assert counts["triggers"] >= 1
        assert counts["stubs"] == counts["slices"] >= 1
        assert is_well_formed(result.program)

    def test_unadapted_program_verifies_trivially(self, adapted_mcf):
        _, prog, _ = adapted_mcf
        counts = verify_adapted_binary(prog)
        assert counts == {"triggers": 0, "stubs": 0, "slices": 0,
                          "spawns": 0}

    def make_bad(self, breakage):
        prog = Program(entry="main")
        fb = FunctionBuilder(prog.add_function("main"))
        fb.chk_c(".ssp_stub1")
        fb.halt()
        fb.label(".ssp_stub1")
        if breakage != "store_in_stub":
            fb.lib_store(0, "r0")
        else:
            fb.store(fb.mov_imm(0x2000), "r0")
        fb.spawn(".ssp_slice1")
        if breakage == "no_rfi":
            fb.br(".ssp_slice1")
        else:
            fb.rfi()
        fb.label(".ssp_slice1")
        if breakage == "slot_mismatch":
            fb.lib_load(5)
        else:
            fb.lib_load(0)
        if breakage == "store_in_slice":
            fb.store(fb.mov_imm(0x2000), "r0")
        if breakage == "halt_in_slice":
            fb.halt()
        else:
            fb.kill()
        return prog

    @pytest.mark.parametrize("breakage", [
        "no_rfi", "slot_mismatch", "store_in_slice", "halt_in_slice",
        "store_in_stub",
    ])
    def test_broken_binaries_rejected(self, breakage):
        prog = self.make_bad(breakage)
        with pytest.raises(VerificationError):
            verify_adapted_binary(prog)
        assert not is_well_formed(prog)

    def test_chk_to_nonstub_rejected(self):
        prog = Program(entry="main")
        fb = FunctionBuilder(prog.add_function("main"))
        fb.chk_c("nowhere_stub")
        fb.halt()
        fb.label("nowhere_stub")
        fb.halt()
        with pytest.raises(VerificationError):
            verify_adapted_binary(prog)


class TestTracing:
    def test_chaining_fills_speculative_contexts(self, adapted_mcf):
        w, _, result = adapted_mcf
        stats, trace = trace_run(result.program, w.build_heap())
        assert trace.max_concurrent_speculative() == 3
        assert trace.thread_count() > 50
        # The chain keeps the speculative contexts almost fully busy.
        busy = trace.speculative_busy_cycles()
        assert busy > 2 * stats.cycles

    def test_baseline_has_single_thread(self, adapted_mcf):
        w, prog, _ = adapted_mcf
        stats, trace = trace_run(prog, w.build_heap(), spawning=False)
        assert trace.thread_count() == 1
        assert trace.max_concurrent_speculative() == 0

    def test_gantt_renders(self, adapted_mcf):
        w, _, result = adapted_mcf
        _, trace = trace_run(result.program, w.build_heap())
        chart = trace.render_gantt(width=40)
        assert "main " in chart and "spec1" in chart
        assert "#" in chart and "M" in chart

    def test_intervals_well_formed(self, adapted_mcf):
        w, _, result = adapted_mcf
        stats, trace = trace_run(result.program, w.build_heap())
        for slot, spans in trace.intervals.items():
            for tid, start, end in spans:
                assert 0 <= start <= end <= stats.cycles
            # Intervals within one context never overlap.
            ordered = sorted(spans, key=lambda s: s[1])
            for (_, _, end1), (_, start2, _) in zip(ordered, ordered[1:]):
                assert end1 <= start2
