"""Integration tests for the experiment harness (paper shapes at tiny
scale; the benchmark harness re-checks them while timing)."""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    ExperimentContext,
    figure2,
    figure8,
    figure9,
    figure10,
    hand_vs_auto,
    table1,
    table2,
)
from repro.workloads import PAPER_ORDER


@pytest.fixture(scope="module")
def context():
    return ExperimentContext("tiny")


class TestContext:
    def test_runs_are_memoised(self, context):
        assert context.run("mcf") is context.run("mcf")

    def test_stats_are_memoised(self, context):
        run = context.run("mcf")
        assert run.stats("inorder", "base") is \
            run.stats("inorder", "base")

    def test_unknown_variant_rejected(self, context):
        with pytest.raises(ValueError):
            context.run("mcf").stats("inorder", "warp-speed")

    def test_speedup_helper(self, context):
        run = context.run("mcf")
        assert run.speedup("inorder", "ssp") == pytest.approx(
            run.cycles("inorder", "base") / run.cycles("inorder", "ssp"))


class TestResultFormatting:
    def test_format_contains_all_cells(self, context):
        result = table1.run()
        text = result.format()
        assert "Table 1" in text
        assert "230-cycle latency" in text

    def test_row_map(self):
        result = table1.run()
        assert "Memory" in result.row_map()


class TestTable1:
    def test_matches_paper_parameters(self):
        rows = dict(table1.run().rows)
        assert "4 hardware" in rows["Threading"]
        assert "12-stage" in rows["Pipelining"]
        assert "16KB" in rows["L1"] and "2-cycle" in rows["L1"]
        assert "256KB" in rows["L2"] and "14-cycle" in rows["L2"]
        assert "3072KB" in rows["L3"] and "30-cycle" in rows["L3"]
        assert "255-entry" in rows["OOO structures"]


class TestFigure2:
    def test_shape(self, context):
        result = figure2.run(context=context, scale="tiny",
                             benchmarks=["mcf", "em3d"])
        rows = result.row_map()
        for name in ("mcf", "em3d"):
            io_pm, io_pd = rows[name][1], rows[name][2]
            assert io_pm > 3.0
            assert 0 < io_pd <= io_pm * 1.05


class TestTable2:
    def test_all_benchmarks_have_rows(self, context):
        result = table2.run(context=context, scale="tiny")
        assert set(result.row_map()) == set(PAPER_ORDER)

    def test_treeadd_df_uses_basic_sp(self, context):
        rows = table2.run(context=context, scale="tiny").row_map()
        assert "basic" in rows["treeadd.df"][5]

    def test_interprocedural_slices(self, context):
        rows = table2.run(context=context, scale="tiny").row_map()
        assert rows["mst"][2] >= 1
        assert rows["health"][2] >= 1


class TestFigure8:
    def test_headline_shape(self, context):
        result = figure8.run(context=context, scale="tiny",
                             benchmarks=["mcf", "em3d", "treeadd.bf"])
        rows = result.row_map()
        for name in ("mcf", "em3d", "treeadd.bf"):
            assert rows[name][1] > 1.2, f"{name}: SSP must speed up IO"
        avg = rows["average"]
        assert avg[1] > 1.5


class TestFigure9:
    def test_ssp_reduces_full_memory_hits(self, context):
        result = figure9.run(context=context, scale="tiny",
                             benchmarks=["mcf"])
        by_key = {(r[0], r[1]): r for r in result.rows}
        assert by_key[("mcf", "io+SSP")][6] < by_key[("mcf", "io")][6]

    def test_categories_sum_to_miss_rate(self, context):
        result = figure9.run(context=context, scale="tiny",
                             benchmarks=["mcf"])
        for row in result.rows:
            assert sum(row[2:8]) == pytest.approx(row[8], abs=0.5)


class TestFigure10:
    def test_baseline_normalised_to_100(self, context):
        result = figure10.run(context=context, scale="tiny",
                              benchmarks=["em3d"])
        by_key = {(r[0], r[1]): r for r in result.rows}
        assert by_key[("em3d", "io")][-1] == pytest.approx(100.0)

    def test_ssp_removes_l3_stalls(self, context):
        result = figure10.run(context=context, scale="tiny",
                              benchmarks=["em3d"])
        by_key = {(r[0], r[1]): r for r in result.rows}
        assert by_key[("em3d", "io+SSP")][2] < by_key[("em3d", "io")][2]

    def test_breakdown_sums_to_total(self, context):
        result = figure10.run(context=context, scale="tiny",
                              benchmarks=["em3d"])
        for row in result.rows:
            if row[1].startswith("io"):
                assert sum(row[2:8]) == pytest.approx(row[8], abs=0.5)


class TestHandVsAuto:
    def test_all_four_rows(self, context):
        result = hand_vs_auto.run(context=context, scale="tiny")
        assert len(result.rows) == 4
        for row in result.rows:
            assert row[2] > 0.9 and row[3] > 0.9


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(ALL_EXPERIMENTS) == {
            "table1", "figure2", "table2", "figure8", "figure9",
            "figure10", "hand_vs_auto"}
