"""Integration tests for the in-order and OOO timing models."""

import pytest

from repro.isa import FunctionBuilder, FunctionalInterpreter, Heap, Program
from repro.sim import inorder_config, ooo_config, simulate

from helpers import linked_list_heap, list_sum_program, mcf_like_workload


def straightline_program(n_adds: int = 60):
    prog = Program(entry="main")
    fb = FunctionBuilder(prog.add_function("main"))
    fb.mov_imm(0, dest="r50")
    for _ in range(n_adds):
        fb.add("r50", imm=1, dest="r50")
    fb.halt()
    return prog.finalize()


class TestInOrderBasics:
    def test_correctness_matches_functional(self):
        heap, addrs, out = linked_list_heap(50)
        prog = list_sum_program(addrs[0], out)
        simulate(prog, heap, "inorder")
        assert heap.load(out) == 50 * 51 // 2

    def test_serial_adds_bounded_by_dependence(self):
        # A chain of dependent adds retires at most one per cycle.
        prog = straightline_program(60)
        stats = simulate(prog, Heap(1 << 13), "inorder")
        assert stats.cycles >= 60

    def test_memory_bound_dominated_by_l3_category(self):
        heap, addrs, out = linked_list_heap(2000)
        prog = list_sum_program(addrs[0], out)
        stats = simulate(prog, heap, "inorder")
        breakdown = stats.cycle_breakdown
        assert breakdown["L3"] > stats.cycles * 0.5

    def test_cycle_breakdown_sums_to_cycles(self):
        heap, addrs, out = linked_list_heap(500)
        prog = list_sum_program(addrs[0], out)
        stats = simulate(prog, heap, "inorder")
        assert sum(stats.cycle_breakdown.values()) == stats.cycles

    def test_perfect_memory_much_faster(self):
        heap, addrs, out = linked_list_heap(2000)
        prog = list_sum_program(addrs[0], out)
        base = simulate(prog, heap, "inorder")
        heap2, addrs2, out2 = linked_list_heap(2000)
        fast = simulate(list_sum_program(addrs2[0], out2), heap2, "inorder",
                        config=inorder_config().with_perfect_memory())
        assert base.cycles / fast.cycles > 5

    def test_instruction_count_matches_functional(self):
        heap, addrs, out = linked_list_heap(100)
        prog = list_sum_program(addrs[0], out)
        interp = FunctionalInterpreter(prog, heap)
        interp.run()
        heap2, addrs2, out2 = linked_list_heap(100)
        stats = simulate(list_sum_program(addrs2[0], out2), heap2, "inorder")
        assert stats.main_instructions == interp.steps


class TestOOOBasics:
    def test_correctness(self):
        heap, addrs, out = linked_list_heap(50)
        prog = list_sum_program(addrs[0], out)
        simulate(prog, heap, "ooo")
        assert heap.load(out) == 50 * 51 // 2

    def test_ooo_overlaps_independent_misses(self):
        """On the mcf-like kernel (independent iterations) the OOO window
        overlaps misses that serialise the in-order machine (Figure 8: the
        OOO model alone achieves a large speedup over in-order)."""
        prog_i, heap_i, _ = mcf_like_workload(ssp=False)
        inorder = simulate(prog_i, heap_i, "inorder")
        prog_o, heap_o, _ = mcf_like_workload(ssp=False)
        ooo = simulate(prog_o, heap_o, "ooo")
        assert inorder.cycles / ooo.cycles > 1.5

    def test_ooo_cannot_beat_dependence_chain(self):
        # A serial pointer chase has no MLP for the window to find.
        heap, addrs, out = linked_list_heap(1500)
        prog = list_sum_program(addrs[0], out)
        inorder = simulate(prog, heap, "inorder")
        heap2, addrs2, out2 = linked_list_heap(1500)
        ooo = simulate(list_sum_program(addrs2[0], out2), heap2, "ooo")
        assert inorder.cycles / ooo.cycles < 1.5

    def test_ooo_faster_than_inorder_on_ilp_code(self):
        prog = straightline_program(200)
        i = simulate(prog, Heap(1 << 13), "inorder")
        prog2 = straightline_program(200)
        o = simulate(prog2, Heap(1 << 13), "ooo")
        # Dependent chain: both roughly 1/cycle; OOO shouldn't be slower
        # by more than its longer pipeline.
        assert o.cycles <= i.cycles + ooo_config().pipeline_stages + 8


class TestModelSelection:
    def test_unknown_model_rejected(self):
        heap, addrs, out = linked_list_heap(5)
        prog = list_sum_program(addrs[0], out)
        with pytest.raises(ValueError):
            simulate(prog, heap, "vliw")

    def test_runaway_guard(self):
        prog = Program(entry="main")
        fb = FunctionBuilder(prog.add_function("main"))
        fb.label("spin")
        fb.br("spin")
        prog.finalize()
        with pytest.raises(RuntimeError):
            simulate(prog, Heap(1 << 13), "inorder", max_cycles=10_000)


class TestBranchPredictionEffects:
    def test_loop_branch_learned(self):
        heap, addrs, out = linked_list_heap(500)
        prog = list_sum_program(addrs[0], out)
        stats = simulate(prog, heap, "inorder")
        # A monotone loop branch should mispredict only around the exit.
        assert stats.mispredicts < 20
