"""Differential suite for the pre-decoded fast path.

The fast path (pre-decoded issue tables + event-driven quiescent
fast-forward inside the run loops) must be *byte-identical* to the
legacy interpretation loop: same cycles, same Figure 10 breakdown, same
spawn/chk/prefetch counters, on every paper workload and on randomly
generated programs.  These tests are the gate for that claim:

* all seven paper workloads x both machine models, one shared adapted
  binary per workload (adaptation itself is deterministic; sharing it
  isolates the comparison to the simulators),
* a fuzz corpus of generated workloads through the same comparison,
* the accounting invariant ``sum(cycle_breakdown) == cycles``,
* the ``REPRO_SIM_LEGACY`` escape hatch actually selects the legacy
  loop.
"""

from __future__ import annotations

import pytest

from repro import SSPPostPassTool, collect_profile
from repro.check.fuzz import FuzzWorkload
from repro.isa.decode import resolve_fast_path
from repro.sim.machine import make_simulator
from repro.workloads.base import make_workload

PAPER_WORKLOADS = ("mcf", "em3d", "health", "mst", "vpr",
                   "treeadd.df", "treeadd.bf")
MODELS = ("inorder", "ooo")

FUZZ_SEEDS = tuple(range(25))


def _adapted(workload):
    """One adapted binary, shared between the fast and legacy runs."""
    program = workload.build_program()
    profile = collect_profile(program, workload.build_heap)
    result = SSPPostPassTool().adapt(program, profile)
    return result.program if result.program is not None else program


def _run(program, workload, model, fast):
    sim = make_simulator(program, workload.build_heap(), model=model,
                         fast_path=fast)
    sim.run()
    return sim.stats.to_dict()


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("name", PAPER_WORKLOADS)
def test_fast_path_byte_identical_on_paper_workloads(name, model):
    w = make_workload(name, "tiny")
    adapted = _adapted(w)
    fast = _run(adapted, w, model, True)
    legacy = _run(adapted, w, model, False)
    assert fast == legacy
    assert sum(fast["cycle_breakdown"].values()) == fast["cycles"]


@pytest.mark.parametrize("model", MODELS)
def test_fast_path_byte_identical_on_fuzz_corpus(model):
    mismatches = []
    for seed in FUZZ_SEEDS:
        w = FuzzWorkload(seed)
        adapted = _adapted(w)
        fast = _run(adapted, w, model, True)
        legacy = _run(adapted, w, model, False)
        if fast != legacy:
            diff = {k: (fast[k], legacy[k]) for k in fast
                    if fast[k] != legacy[k]}
            mismatches.append((seed, diff))
        assert sum(fast["cycle_breakdown"].values()) == fast["cycles"], seed
    assert not mismatches


@pytest.mark.parametrize("model", MODELS)
def test_breakdown_sums_to_cycles_without_spawning(model):
    # The invariant must hold on the unadapted binary too (no spec
    # threads, different stall mix).
    w = make_workload("mcf", "tiny")
    sim = make_simulator(w.build_program(), w.build_heap(), model=model,
                         spawning=False)
    sim.run()
    assert sum(sim.stats.cycle_breakdown.values()) == sim.stats.cycles


def test_legacy_env_escape_hatch(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_LEGACY", raising=False)
    assert resolve_fast_path(None) is True
    for value in ("1", "true", "yes"):
        monkeypatch.setenv("REPRO_SIM_LEGACY", value)
        assert resolve_fast_path(None) is False
    monkeypatch.setenv("REPRO_SIM_LEGACY", "")
    assert resolve_fast_path(None) is True
    # An explicit argument beats the environment.
    monkeypatch.setenv("REPRO_SIM_LEGACY", "1")
    assert resolve_fast_path(True) is True
    assert resolve_fast_path(False) is False

    # And the simulators honour it end to end.
    w = make_workload("mcf", "tiny")
    program = w.build_program()
    monkeypatch.setenv("REPRO_SIM_LEGACY", "1")
    assert make_simulator(program, w.build_heap(),
                          model="inorder").fast_path is False
    monkeypatch.delenv("REPRO_SIM_LEGACY")
    assert make_simulator(program, w.build_heap(),
                          model="inorder").fast_path is True
