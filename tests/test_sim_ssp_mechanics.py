"""End-to-end tests of the SSP hardware mechanisms (chk.c / spawn / LIB).

These use a hand-adapted chaining-SP binary (the Figure 5/7 shape) to check
that the simulator reproduces the paper's core claims *before* any compiler
machinery is involved.
"""

import pytest

from repro.sim import simulate

from helpers import mcf_like_workload


def run_pair(model, **kw):
    base_prog, base_heap, base_out = mcf_like_workload(ssp=False, **kw)
    base = simulate(base_prog, base_heap, model)
    ssp_prog, ssp_heap, ssp_out = mcf_like_workload(ssp=True, **kw)
    ssp = simulate(ssp_prog, ssp_heap, model)
    return base, ssp, (base_heap.load(base_out), ssp_heap.load(ssp_out))


class TestChainingSSPInOrder:
    def test_speedup_and_correctness(self):
        base, ssp, (sum_base, sum_ssp) = run_pair("inorder")
        assert sum_base == sum_ssp  # speculation never alters main state
        assert base.cycles / ssp.cycles > 1.5

    def test_one_trigger_many_chained_spawns(self):
        _, ssp, _ = run_pair("inorder")
        assert ssp.chk_fired == 1
        assert ssp.spawns >= 1000  # the chain kept itself alive

    def test_l3_stall_cycles_reduced(self):
        base, ssp, _ = run_pair("inorder")
        assert ssp.cycle_breakdown["L3"] < base.cycle_breakdown["L3"] * 0.6

    def test_spec_threads_do_work(self):
        _, ssp, _ = run_pair("inorder")
        assert ssp.spec_instructions > 0
        assert ssp.memory.prefetches_issued > 500


class TestChainingSSPOOO:
    def test_speedup_and_correctness(self):
        base, ssp, (sum_base, sum_ssp) = run_pair("ooo")
        assert sum_base == sum_ssp
        assert ssp.cycles < base.cycles

    def test_chain_survives(self):
        _, ssp, _ = run_pair("ooo")
        assert ssp.spawns >= 1000


class TestSpawningDisabled:
    def test_chk_never_fires_when_disabled(self):
        prog, heap, _ = mcf_like_workload(ssp=True)
        stats = simulate(prog, heap, "inorder", spawning=False)
        assert stats.chk_fired == 0
        assert stats.spawns == 0

    def test_disabled_ssp_binary_matches_baseline_shape(self):
        prog, heap, out = mcf_like_workload(ssp=True)
        stats = simulate(prog, heap, "inorder", spawning=False)
        base_prog, base_heap, base_out = mcf_like_workload(ssp=False)
        base = simulate(base_prog, base_heap, "inorder")
        assert heap.load(out) == base_heap.load(base_out)
        # chk.c as nop: the adapted binary costs within 2% of baseline.
        assert stats.cycles <= base.cycles * 1.02


class TestDelinquentLoadProfile:
    def test_profile_identifies_the_two_loads(self):
        prog, heap, _ = mcf_like_workload(ssp=False)
        stats = simulate(prog, heap, "inorder", spawning=False)
        top = stats.top_loads_by_miss_cycles(2)
        loads = [i for i in prog.code if i.op == "ld"]
        assert set(top) <= {ld.uid for ld in loads}
        total = stats.total_miss_cycles()
        covered = sum(stats.load_miss_cycles(uid) for uid in top)
        assert covered / total > 0.9

    def test_figure9_breakdown_shape(self):
        prog, heap, _ = mcf_like_workload(ssp=False)
        stats = simulate(prog, heap, "inorder")
        uids = stats.top_loads_by_miss_cycles(2)
        breakdown = stats.delinquent_breakdown(uids)
        assert breakdown["miss rate"] > 0.5
        fractions = [v for k, v in breakdown.items() if k != "miss rate"]
        assert all(0 <= f <= 1 for f in fractions)

    def test_ssp_shifts_hits_toward_partial_and_near_levels(self):
        # Each build has fresh instruction uids, so take the delinquent
        # loads positionally: the two loads of the main loop.
        base_prog, base_heap, _ = mcf_like_workload(ssp=False)
        base = simulate(base_prog, base_heap, "inorder")
        base_uids = [i.uid for i in base_prog.code if i.op == "ld"]
        ssp_prog, ssp_heap, _ = mcf_like_workload(ssp=True)
        ssp = simulate(ssp_prog, ssp_heap, "inorder")
        main_func = ssp_prog.function("main")
        ssp_uids = [i.uid for i in main_func.block("loop").instrs
                    if i.op == "ld"]
        b = base.delinquent_breakdown(base_uids)
        s = ssp.delinquent_breakdown(ssp_uids)
        assert s["Mem Hit"] < b["Mem Hit"]  # full-latency misses reduced
