"""Unit tests for Program / Function / BasicBlock and finalisation."""

import pytest

from repro.isa import FunctionBuilder, Program, ProgramError
from repro.isa.instructions import Instruction, nop


def two_block_program() -> Program:
    prog = Program(entry="main")
    fb = FunctionBuilder(prog.add_function("main"))
    fb.mov_imm(1, dest="r40")
    fb.br("second")
    fb.label("second")
    fb.halt()
    return prog


class TestStructure:
    def test_duplicate_function_rejected(self):
        prog = Program()
        prog.add_function("f")
        with pytest.raises(ProgramError):
            prog.add_function("f")

    def test_duplicate_label_rejected(self):
        prog = Program()
        func = prog.add_function("f")
        func.add_block("a")
        with pytest.raises(ProgramError):
            func.add_block("a")

    def test_unknown_function_lookup(self):
        with pytest.raises(ProgramError):
            Program().function("ghost")

    def test_unknown_block_lookup(self):
        prog = Program()
        func = prog.add_function("f")
        with pytest.raises(ProgramError):
            func.block("ghost")

    def test_entry_block_is_first(self):
        prog = two_block_program()
        assert prog.function("main").entry.label == "entry"

    def test_find_instruction_by_uid(self):
        prog = two_block_program()
        instr = next(iter(prog.instructions()))
        func, block, idx = prog.find_instruction(instr.uid)
        assert func.name == "main"
        assert block.instrs[idx] is instr

    def test_find_unknown_uid(self):
        with pytest.raises(ProgramError):
            two_block_program().find_instruction(10**9)


class TestSuccessors:
    def test_fallthrough(self):
        prog = Program()
        fb = FunctionBuilder(prog.add_function("f"))
        fb.mov_imm(1)
        fb.label("next")
        fb.halt()
        func = prog.function("f")
        assert func.successors(func.block("entry")) == ["next"]

    def test_unconditional_branch_no_fallthrough(self):
        prog = two_block_program()
        func = prog.function("main")
        assert func.successors(func.block("entry")) == ["second"]

    def test_conditional_branch_has_two_successors(self):
        prog = Program()
        fb = FunctionBuilder(prog.add_function("f"))
        p = fb.cmp("eq", "r40", imm=0)
        fb.br_cond(p, "taken")
        fb.label("fall")
        fb.halt()
        fb.label("taken")
        fb.halt()
        func = prog.function("f")
        assert func.successors(func.block("entry")) == ["taken", "fall"]

    def test_halt_ends_flow(self):
        prog = Program()
        fb = FunctionBuilder(prog.add_function("f"))
        fb.halt()
        fb.label("unreachable")
        fb.halt()
        func = prog.function("f")
        assert func.successors(func.block("entry")) == []


class TestFinalize:
    def test_addresses_are_sequential(self):
        prog = two_block_program().finalize()
        assert [i.addr for i in prog.code] == list(range(len(prog.code)))

    def test_branch_targets_resolved(self):
        prog = two_block_program().finalize()
        br_idx = next(i for i, ins in enumerate(prog.code)
                      if ins.op == "br")
        assert prog.branch_target[br_idx] == \
            prog.label_index("main", "second")

    def test_unresolved_label_raises(self):
        prog = Program()
        fb = FunctionBuilder(prog.add_function("f"))
        fb.br("nowhere")
        with pytest.raises(ProgramError):
            prog.finalize()

    def test_call_to_unknown_function_raises(self):
        prog = Program()
        fb = FunctionBuilder(prog.add_function("f"))
        fb.call("ghost")
        fb.halt()
        with pytest.raises(ProgramError):
            prog.finalize()

    def test_function_ids_assigned(self):
        prog = Program()
        FunctionBuilder(prog.add_function("a")).halt()
        FunctionBuilder(prog.add_function("b")).halt()
        prog.finalize()
        assert prog.function_by_id[prog.function_id["a"]] == "a"
        assert prog.function_by_id[prog.function_id["b"]] == "b"

    def test_qualified_labels_resolve_across_functions(self):
        prog = Program()
        fa = FunctionBuilder(prog.add_function("a"))
        fa.halt()
        fa.label("inside_a")
        fa.halt()
        fb = FunctionBuilder(prog.add_function("b"))
        fb.br("a::inside_a")
        prog.finalize()
        br_idx = prog.function_entry["b"]
        assert prog.branch_target[br_idx] == prog.label_index("a", "inside_a")

    def test_finalize_idempotent(self):
        prog = two_block_program()
        first = prog.finalize().code[:]
        second = prog.finalize().code[:]
        assert first == second


class TestClone:
    def test_clone_preserves_uids(self):
        prog = two_block_program()
        clone = prog.clone()
        assert [i.uid for i in prog.instructions()] == \
            [i.uid for i in clone.instructions()]

    def test_clone_is_independent(self):
        prog = two_block_program()
        clone = prog.clone()
        clone.function("main").block("entry").append(nop())
        n_orig = sum(1 for _ in prog.instructions())
        n_clone = sum(1 for _ in clone.instructions())
        assert n_clone == n_orig + 1

    def test_clone_runs_identically(self):
        from repro.isa import FunctionalInterpreter, Heap
        prog = two_block_program()
        clone = prog.clone().finalize()
        interp = FunctionalInterpreter(clone, Heap(1 << 13))
        state = interp.run()
        assert state.halted


class TestDisassemble:
    def test_listing_mentions_everything(self):
        text = two_block_program().finalize().disassemble()
        assert ".func main" in text
        assert "second:" in text
        assert "halt" in text
