"""Tests for fleet-wide telemetry (:mod:`repro.obs.fleet`).

Covers aggregation over a real drained service root (worker summaries,
queue counts, backend counters), the empty/half-formed-root guarantees,
lease and pending-age accounting, both renderers, report embedding, and
the ``service top`` CLI surface.
"""

import json
import time

import pytest

from repro.obs import (
    collect_fleet,
    fleet_summary_lines,
    render_fleet,
    render_report,
)
from repro.runner import RunSpec
from repro.service import ServiceClient, ServiceConfig, ServiceWorker
from repro.tool.cli import main


@pytest.fixture()
def drained_root(tmp_path):
    """A service root with one submitted batch drained by one worker."""
    config = ServiceConfig(root=tmp_path / "svc")
    client = ServiceClient(config=config)
    spec = RunSpec.create("health", scale="tiny", model="inorder",
                          variant="ssp")
    client.submit([spec])
    worker = ServiceWorker(config.make_queue(), config.make_backend())
    assert worker.drain() >= 1
    worker.write_summary()
    return config


class TestCollectFleet:
    def test_empty_root_yields_an_empty_document(self, tmp_path):
        doc = collect_fleet(root=tmp_path / "nowhere")
        assert doc["totals"]["workers"] == 0
        assert doc["totals"]["throughput"] == 0.0
        assert doc["queue"]["pending"] == 0
        assert doc["queue"]["oldest_lease_age"] is None
        assert "no worker summaries yet" in render_fleet(doc)

    def test_drained_root_aggregates_everything(self, drained_root):
        doc = collect_fleet(config=drained_root)
        json.dumps(doc)
        assert doc["totals"]["workers"] == 1
        assert doc["totals"]["executed"] == 1
        assert doc["totals"]["throughput"] > 0
        assert doc["queue"]["done"] == 1
        assert doc["queue"]["pending"] == 0
        assert doc["backend"]["entries"] >= 1
        assert doc["backend"]["bytes"] > 0
        (row,) = doc["workers"]
        assert row["executed"] == 1
        assert row["wall_time"] > 0

    def test_corrupt_worker_summary_is_skipped(self, drained_root):
        workers_dir = drained_root.root / "workers"
        (workers_dir / "torn.json").write_text("{not json",
                                               encoding="utf-8")
        doc = collect_fleet(config=drained_root)
        assert doc["totals"]["workers"] == 1

    def test_lease_and_pending_ages(self, tmp_path):
        config = ServiceConfig(root=tmp_path / "svc")
        client = ServiceClient(config=config)
        spec = RunSpec.create("health", scale="tiny", model="inorder",
                              variant="ssp")
        client.submit([spec])  # left pending: nobody drains it
        queue = config.make_queue()
        queue.lease_dir.mkdir(parents=True, exist_ok=True)
        (queue.lease_dir / "stuck.lease").write_text("", encoding="utf-8")
        doc = collect_fleet(config=config, now=time.time() + 30)
        assert doc["queue"]["pending"] == 1
        assert doc["queue"]["oldest_pending_age"] >= 30
        assert doc["queue"]["oldest_lease_age"] >= 30

    def test_dedupe_rate_across_workers(self, drained_root):
        # A second worker that only deduplicates: resubmit the same
        # spec; the queue skips it (already done), so fake the summary.
        summary = {"worker": "w2", "pid": 999, "started": 100.0,
                   "finished": 110.0, "executed": 0, "deduped": 3,
                   "failures": 0, "requeues": 0, "stolen_leases": 0,
                   "backend": {}}
        path = drained_root.root / "workers" / "w2.json"
        path.write_text(json.dumps(summary), encoding="utf-8")
        doc = collect_fleet(config=drained_root)
        assert doc["totals"]["workers"] == 2
        assert doc["totals"]["deduped"] == 3
        assert doc["totals"]["dedupe_rate"] == pytest.approx(3 / 4)


class TestRendering:
    def test_render_fleet_has_worker_table(self, drained_root):
        doc = collect_fleet(config=drained_root)
        text = render_fleet(doc)
        assert "fleet @" in text
        assert "queue:" in text
        assert "backend:" in text
        (row,) = doc["workers"]
        assert str(row["worker"])[:28] in text

    def test_summary_lines_are_compact(self, drained_root):
        doc = collect_fleet(config=drained_root)
        lines = fleet_summary_lines(doc)
        assert len(lines) == 3
        assert lines[0].startswith("fleet @")

    def test_age_humanizer(self):
        from repro.obs.fleet import _age
        assert _age(None) == "-"
        assert _age(45) == "45s"
        assert _age(600) == "10m"
        assert _age(7200) == "2.0h"

    def test_report_renders_fleet_section(self, drained_root):
        doc = collect_fleet(config=drained_root)
        text = render_report({"workload": "x", "scale": "tiny",
                              "model": "inorder", "fleet": doc})
        assert "fleet @" in text


class TestCLIServiceTop:
    def test_one_shot_top(self, drained_root, capsys):
        assert main(["service", "top",
                     "--root", str(drained_root.root)]) == 0
        out = capsys.readouterr().out
        assert "fleet @" in out
        assert "queue:" in out

    def test_top_json(self, drained_root, capsys):
        assert main(["service", "top", "--json",
                     "--root", str(drained_root.root)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["totals"]["executed"] == 1

    def test_top_on_empty_root(self, tmp_path, capsys):
        assert main(["service", "top",
                     "--root", str(tmp_path / "empty")]) == 0
        assert "no worker summaries yet" in capsys.readouterr().out
