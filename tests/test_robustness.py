"""Robustness: the tool must behave sensibly on adversarial programs —
degrade to "no adaptation" or a safe one, never crash or corrupt."""

import pytest

from repro.isa import FunctionBuilder, FunctionalInterpreter, Heap, Program
from repro.profiling import collect_profile
from repro.sim import simulate
from repro.tool import SSPPostPassTool

from helpers import linked_list_heap, list_sum_program


def adapt(prog, heap_factory):
    profile = collect_profile(prog, heap_factory)
    return profile, SSPPostPassTool().adapt(prog, profile)


class TestDegenerateKernels:
    def test_compute_only_program(self):
        prog = Program(entry="main")
        fb = FunctionBuilder(prog.add_function("main"))
        fb.mov_imm(0, dest="r100")
        fb.label("loop")
        fb.add("r100", imm=1, dest="r100")
        p = fb.cmp("lt", "r100", imm=500)
        fb.br_cond(p, "loop")
        fb.halt()
        prog.finalize()
        profile, result = adapt(prog, lambda: Heap(1 << 14))
        assert result.adapted is None  # nothing delinquent

    def test_cache_friendly_loads(self):
        """Sequential scan: hardware-friendly, few delinquent loads worth
        attacking — the tool may adapt, but must not slow things down."""
        prog = Program(entry="main")
        fb = FunctionBuilder(prog.add_function("main"))
        heap0 = Heap(1 << 22)
        data = heap0.alloc_array(4000, 8)
        fb.mov_imm(data, dest="r100")
        fb.mov_imm(data + 4000 * 8, dest="r101")
        fb.mov_imm(0, dest="r102")
        fb.label("loop")
        v = fb.load("r100", 0)
        fb.add("r102", v, dest="r102")
        fb.add("r100", imm=8, dest="r100")
        p = fb.cmp("lt", "r100", "r101")
        fb.br_cond(p, "loop")
        fb.halt()
        prog.finalize()

        def factory():
            heap = Heap(1 << 22)
            heap.alloc_array(4000, 8)
            return heap

        profile, result = adapt(prog, factory)
        if result.adapted is not None:
            stats = simulate(result.program, factory(), "inorder")
            assert stats.cycles <= profile.baseline_cycles * 1.10

    def test_single_iteration_loop(self):
        heap0, addrs, out = linked_list_heap(1)
        prog = list_sum_program(addrs[0], out)

        def factory():
            heap, _, _ = linked_list_heap(1)
            return heap

        profile, result = adapt(prog, factory)
        # One node: at most one miss; nothing to chain over.  Whatever the
        # tool decides, the program must stay correct.
        if result.adapted is not None:
            heap, _, out2 = linked_list_heap(1)
            simulate(result.program, heap, "inorder")
            assert heap.load(out2) == 1

    def test_store_feeding_address_excluded_from_slice(self):
        """Addresses that flow through memory (store->load) cut the slice:
        the tool must still emit something sound."""
        prog = Program(entry="main")
        fb = FunctionBuilder(prog.add_function("main"))
        heap0 = Heap(1 << 22)
        cell = heap0.alloc(8)
        import random
        rng = random.Random(5)
        nodes = [heap0.alloc(64, align=64) for _ in range(600)]
        rng.shuffle(nodes)
        for i, n in enumerate(nodes):
            heap0.store(n, i)
        table = heap0.alloc_array(600, 8)
        for i, n in enumerate(nodes):
            heap0.store(table + i * 8, n)
        fb.mov_imm(0, dest="r100")
        fb.mov_imm(table, dest="r101")
        fb.mov_imm(cell, dest="r102")
        fb.mov_imm(0, dest="r103")
        fb.label("loop")
        off = fb.shl("r100", 3)
        slot = fb.add("r101", off)
        ptr = fb.load(slot, 0)
        fb.store("r102", ptr)              # spill the pointer
        reload = fb.load("r102", 0)        # reload it (memory dep!)
        v = fb.load(reload, 0)             # delinquent
        fb.add("r103", v, dest="r103")
        fb.add("r100", imm=1, dest="r100")
        p = fb.cmp("lt", "r100", imm=600)
        fb.br_cond(p, "loop")
        fb.halt()
        prog.finalize()

        built = {}

        def factory():
            heap = Heap(1 << 22)
            heap.alloc(8)
            ns = [heap.alloc(64, align=64) for _ in range(600)]
            rng2 = random.Random(5)
            rng2.shuffle(ns)
            for i, n in enumerate(ns):
                heap.store(n, i)
            t = heap.alloc_array(600, 8)
            for i, n in enumerate(ns):
                heap.store(t + i * 8, n)
            return heap

        profile, result = adapt(prog, factory)
        if result.adapted is not None:
            # Sound: simulation completes, main thread state intact.
            stats = simulate(result.program, factory(), "inorder")
            assert stats.cycles > 0


class TestRecursionEdgeCases:
    def test_mutual_recursion(self):
        prog = Program(entry="main")
        a = FunctionBuilder(prog.add_function("ping", num_params=1))
        (n,) = a.params(1)
        p = a.cmp("eq", n, imm=0)
        a.br_cond(p, "base")
        nxt = a.load(n, 8)
        a.ret(a.call_fresh("pong", [nxt]))
        a.label("base")
        a.ret(a.mov_imm(0))
        b = FunctionBuilder(prog.add_function("pong", num_params=1))
        (m,) = b.params(1)
        q = b.cmp("eq", m, imm=0)
        b.br_cond(q, "base")
        nxt2 = b.load(m, 8)
        b.ret(b.call_fresh("ping", [nxt2]))
        b.label("base")
        b.ret(b.mov_imm(0))

        fb = FunctionBuilder(prog.add_function("main"))
        heap0, addrs, out = linked_list_heap(200)
        fb.call_fresh("ping", [fb.mov_imm(addrs[0])])
        fb.halt()
        prog.finalize()

        def factory():
            heap, _, _ = linked_list_heap(200)
            return heap

        profile, result = adapt(prog, factory)
        # Mutual recursion: call-graph cycle; must not hang or crash.
        if result.adapted is not None:
            simulate(result.program, factory(), "inorder")

    def test_deep_recursion_functional(self):
        """The register-window model handles deep call stacks."""
        heap, addrs, out = linked_list_heap(5)
        prog = Program(entry="main")
        f = FunctionBuilder(prog.add_function("down", num_params=1))
        (n,) = f.params(1)
        p = f.cmp("le", n, imm=0)
        f.br_cond(p, "base")
        f.ret(f.call_fresh("down", [f.sub(n, imm=1)]))
        f.label("base")
        f.ret(f.mov_imm(42))
        m = FunctionBuilder(prog.add_function("main"))
        r = m.call_fresh("down", [m.mov_imm(2000)])
        cell = heap.alloc(8)
        m.store(m.mov_imm(cell), r)
        m.halt()
        prog.finalize()
        FunctionalInterpreter(prog, heap).run()
        assert heap.load(cell) == 42


class TestChartRendering:
    def test_bars_render(self):
        from repro.experiments import ExperimentResult, render_bars
        result = ExperimentResult("T", ["name", "a", "b"],
                                  [["x", 1.0, 2.0], ["y", 4.0, 0.5]])
        chart = render_bars(result, width=10)
        assert "x" in chart and "4.00" in chart
        assert "█" in chart

    def test_stacked_render(self):
        from repro.experiments import ExperimentResult, render_stacked
        result = ExperimentResult("T", ["name", "cfg", "p", "q"],
                                  [["x", "io", 30.0, 70.0]])
        chart = render_stacked(result, value_columns=[2, 3],
                               label_columns=[0, 1], width=10,
                               total=100.0)
        assert "x io" in chart
        assert "100.0" in chart

    def test_empty_result(self):
        from repro.experiments import ExperimentResult, render_bars
        assert "(no data)" in render_bars(
            ExperimentResult("T", ["a"], []))
