"""Tests for sampled simulation (:mod:`repro.sim.sampling`).

Sampled mode trades exactness of *timing* for speed while keeping
program *results* exact: detailed windows measure CPI and the Figure 10
stall mix, functional skips advance the architectural state.  The tests
pin down:

* knob validation and the RunSpec hash separation (a sampled run must
  never collide with a full-detail run in caches or ledgers),
* exact program output under sampling (the workload's own
  ``check_output`` oracle),
* the accounting invariant ``sum(cycle_breakdown) == cycles``,
* the cycle-count error bound against full detail on the paper
  workloads (loose — the documented bound lives in EXPERIMENTS.md; this
  is the tripwire for a mechanism regression),
* ``charge_proportional`` apportionment exactness,
* the never-kill property of the functional chain advance,
* worker routing of sampled specs.
"""

from __future__ import annotations

import pytest

from repro import SSPPostPassTool, collect_profile
from repro.runner.spec import RunSpec
from repro.runner.worker import WorkerTask, execute_task
from repro.sim.caches import MemorySystem
from repro.sim.config import MachineConfig
from repro.sim.machine import make_simulator
from repro.sim.sampling import (MIN_WINDOW, advance_chain, run_sampled,
                                validate_sampling)
from repro.sim.stats import SimStats
from repro.workloads.base import make_workload


def _adapted(workload):
    program = workload.build_program()
    profile = collect_profile(program, workload.build_heap)
    result = SSPPostPassTool().adapt(program, profile)
    return result.program if result.program is not None else program


class TestValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            validate_sampling(0, 200)
        with pytest.raises(ValueError):
            validate_sampling(-5, 200)
        with pytest.raises(ValueError):
            validate_sampling(1000, MIN_WINDOW - 1)
        with pytest.raises(ValueError):
            validate_sampling(1000, 1000)
        with pytest.raises(ValueError):
            validate_sampling(1000, 2000)
        validate_sampling(1000, MIN_WINDOW)

    def test_runspec_validates_on_creation(self):
        with pytest.raises(ValueError):
            RunSpec.create("mcf", scale="tiny", sample_interval=100,
                           sample_window=100)


class TestSpecHashing:
    def test_sampled_spec_hashes_separately(self):
        full = RunSpec.create("mcf", scale="tiny", model="inorder",
                              variant="ssp")
        samp = full.derive(sample_interval=2000, sample_window=500)
        assert full.content_hash() != samp.content_hash()
        other = full.derive(sample_interval=4000, sample_window=500)
        assert samp.content_hash() != other.content_hash()

    def test_key_roundtrip(self):
        samp = RunSpec.create("mcf", scale="tiny", model="ooo",
                              variant="ssp", sample_interval=2000,
                              sample_window=500)
        again = RunSpec.from_key(samp.key())
        assert again.content_hash() == samp.content_hash()
        full = RunSpec.create("mcf", scale="tiny", model="ooo",
                              variant="ssp")
        assert "sample_interval" not in full.key()
        assert RunSpec.from_key(full.key()).content_hash() \
            == full.content_hash()


@pytest.mark.parametrize("model", ["inorder", "ooo"])
@pytest.mark.parametrize("name", ["mcf", "em3d", "health"])
class TestSampledRuns:
    def test_output_exact_and_breakdown_sums(self, name, model):
        w = make_workload(name, "tiny")
        adapted = _adapted(w)
        heap = w.build_heap()
        sim = make_simulator(adapted, heap, model=model)
        stats = run_sampled(sim, interval=2000, window=500)
        # Functional skips execute the program architecturally: the
        # workload's own output oracle must still pass.
        w.check_output(heap)
        assert sum(stats.cycle_breakdown.values()) == stats.cycles
        assert stats.main_instructions > 0

    def test_cycle_error_within_tripwire(self, name, model):
        # Loose mechanism tripwire, not the documented bound (that is
        # measured at default scale in EXPERIMENTS.md): tiny runs span
        # few intervals, so only gross breakage (a lost chain, a
        # mischarged skip) trips this.
        w = make_workload(name, "tiny")
        adapted = _adapted(w)
        full = make_simulator(adapted, w.build_heap(), model=model)
        full.run()
        samp = make_simulator(adapted, w.build_heap(), model=model)
        run_sampled(samp, interval=2000, window=500)
        err = abs(samp.stats.cycles - full.stats.cycles) \
            / full.stats.cycles
        assert err < 2.0


class TestChargeProportional:
    def _stats(self):
        return SimStats(MemorySystem(MachineConfig()))

    def test_exact_apportionment(self):
        stats = self._stats()
        stats.charge_proportional({"L3": 2, "L2": 1}, 100)
        assert stats.cycle_breakdown["L3"] == 67
        assert stats.cycle_breakdown["L2"] == 33
        assert sum(stats.cycle_breakdown.values()) == 100

    def test_zero_weights_land_in_other(self):
        stats = self._stats()
        stats.charge_proportional({}, 7)
        assert stats.cycle_breakdown["Other"] == 7

    def test_nonpositive_cycles_charge_nothing(self):
        stats = self._stats()
        stats.charge_proportional({"L3": 1}, 0)
        stats.charge_proportional({"L3": 1}, -5)
        assert sum(stats.cycle_breakdown.values()) == 0

    def test_sum_invariant_over_awkward_splits(self):
        stats = self._stats()
        stats.charge_proportional(
            {"L3": 3, "L2": 3, "L1": 1, "Exec": 5, "Other": 2}, 97)
        assert sum(stats.cycle_breakdown.values()) == 97


class TestAdvanceChain:
    def test_zero_links_pauses_in_place(self):
        w = make_workload("mcf", "tiny")
        adapted = _adapted(w)
        heap = w.build_heap()
        sim = make_simulator(adapted, heap, model="inorder")
        survivor, completed = advance_chain(
            adapted, heap, sim.memory, sim._dcode,
            _spec_state(adapted), 0, 0)
        assert completed == 0
        assert survivor is not None and not survivor.done

    def test_never_kills_a_chain(self):
        # Even a huge link budget that functionally drains the chain
        # must hand back a live state: the pace estimate can overshoot,
        # and only a detailed window may retire a context for good.
        w = make_workload("mcf", "tiny")
        adapted = _adapted(w)
        heap = w.build_heap()
        sim = make_simulator(adapted, heap, model="inorder")
        sim.memory.recording = False
        try:
            survivor, completed = advance_chain(
                adapted, heap, sim.memory, sim._dcode,
                _spec_state(adapted), 10_000, 0)
        finally:
            sim.memory.recording = True
        assert survivor is not None
        assert not survivor.done
        assert completed >= 1


def _spec_state(program):
    """A live speculative thread parked at the program's first slice."""
    from repro.isa.decode import K_SPAWN, decode_program
    from repro.isa.interp import ThreadState, spawn_thread
    dcode = decode_program(program)
    targets = [d[11] for d in dcode if d[0] == K_SPAWN]
    assert targets, "adapted program has no spawn sites"
    parent = ThreadState(0, 0)
    return spawn_thread(parent, 1, targets[0])


class TestWorkerRouting:
    def test_sampled_spec_routes_through_run_sampled(self):
        full = RunSpec.create("health", scale="tiny", model="inorder",
                              variant="ssp")
        samp = full.derive(sample_interval=2000, sample_window=500)
        pf = execute_task(WorkerTask(spec=full))["stats"]
        ps = execute_task(WorkerTask(spec=samp))["stats"]
        assert sum(ps["cycle_breakdown"].values()) == ps["cycles"]
        # Same program, approximated clock: net of recovery stubs (the
        # skips step with chk_fires=False, so stub executions differ)
        # the main thread retires exactly the same instruction stream.
        assert (ps["main_instructions"] - ps["main_stub_instructions"]
                == pf["main_instructions"] - pf["main_stub_instructions"])

    def test_sampled_ooo_smoke(self):
        samp = RunSpec.create("em3d", scale="tiny", model="ooo",
                              variant="ssp", sample_interval=2000,
                              sample_window=500)
        payload = execute_task(WorkerTask(spec=samp))
        stats = payload["stats"]
        assert stats["cycles"] > 0
        assert sum(stats["cycle_breakdown"].values()) == stats["cycles"]
