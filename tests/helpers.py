"""Shared program-construction helpers for the test suite."""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.isa import FunctionBuilder, Heap, Program
from repro.isa.instructions import Instruction


def linked_list_heap(n: int, *, node_bytes: int = 64, shuffle: bool = True,
                     seed: int = 7, heap_bytes: int = 1 << 24
                     ) -> Tuple[Heap, List[int], int]:
    """A heap holding an ``n``-node singly linked list.

    Node layout: +0 value (i+1), +8 next pointer.  Returns
    (heap, node addresses in list order, result cell address).
    """
    heap = Heap(heap_bytes)
    addrs = [heap.alloc(node_bytes, align=64) for _ in range(n)]
    if shuffle:
        rng = random.Random(seed)
        rng.shuffle(addrs)
    for i, a in enumerate(addrs):
        heap.store(a, i + 1)
        heap.store(a + 8, addrs[i + 1] if i + 1 < len(addrs) else 0)
    out = heap.alloc(8)
    return heap, addrs, out


def list_sum_program(head: int, out: int) -> Program:
    """Walk the list at ``head``, summing values into ``out``."""
    prog = Program(entry="main")
    fb = FunctionBuilder(prog.add_function("main"))
    fb.mov_imm(0, dest="r50")
    fb.mov_imm(head, dest="r51")
    fb.label("loop")
    v = fb.load("r51", 0)
    fb.add("r50", v, dest="r50")
    fb.load("r51", 8, dest="r51")
    p = fb.cmp("ne", "r51", imm=0)
    fb.br_cond(p, "loop")
    o = fb.mov_imm(out)
    fb.store(o, "r50")
    fb.halt()
    return prog.finalize()


def mcf_like_workload(ssp: bool = False, narcs: int = 2000,
                      nnodes: int = 1000, seed: int = 11
                      ) -> Tuple[Program, Heap, int]:
    """The paper's Figure 3 kernel: a strided arc scan with a dependent
    pointer dereference per iteration, optionally with a hand-built
    chaining-SP adaptation (Figures 5 and 7).

    Returns (program, heap, result cell address).
    """
    rng = random.Random(seed)
    prog = Program(entry="main")
    fb = FunctionBuilder(prog.add_function("main"))
    heap = Heap(1 << 25)
    stride = 64
    nodes = [heap.alloc(64, align=64) for _ in range(nnodes)]
    arcs_base = heap.alloc(narcs * stride, align=64)
    for i in range(narcs):
        heap.store(arcs_base + i * stride, rng.choice(nodes))
    for node in nodes:
        heap.store(node + 16, rng.randrange(1000))
    out = heap.alloc(8)

    fb.mov_imm(arcs_base, dest="r50")
    fb.mov_imm(arcs_base + narcs * stride, dest="r51")
    fb.mov_imm(0, dest="r52")
    if ssp:
        fb.chk_c("stub1")
    fb.label("loop")
    t = fb.mov("r50")
    u = fb.load(t, 0)
    pot = fb.load(u, 16)
    fb.add("r52", pot, dest="r52")
    fb.add("r50", imm=stride, dest="r50")
    p = fb.cmp("lt", "r50", "r51")
    fb.br_cond(p, "loop")
    o = fb.mov_imm(out)
    fb.store(o, "r52")
    fb.halt()

    if ssp:
        fb.label("stub1")
        fb.lib_store(0, "r50")
        fb.lib_store(1, "r51")
        fb.spawn("slice1")
        fb.rfi()
        fb.label("slice1")
        fb.lib_load(0, dest="r60")
        fb.lib_load(1, dest="r61")
        fb.mov("r60", dest="r62")
        fb.add("r60", imm=stride, dest="r60")
        fb.lib_store(0, "r60")
        fb.lib_store(1, "r61")
        pc2 = fb.cmp("lt", "r60", "r61")
        fb.emit(Instruction(op="spawn", target="slice1", pred=pc2))
        fb.load("r62", 0, dest="r63")
        fb.prefetch("r63", 16)
        fb.kill()
    prog.finalize()
    return prog, heap, out
