"""Tests for repro.runner: specs, cache, executor, telemetry, wiring."""

import dataclasses
import json
import time
from pathlib import Path

import pytest

from repro.experiments import ExperimentContext, figure8
from repro.runner import (
    ResultCache,
    Runner,
    RunnerError,
    RunSpec,
    clear_artifact_cache,
    code_version,
    execute_spec,
    freeze_options,
    freeze_overrides,
)
from repro.sim.caches import MemorySystem
from repro.sim.config import MachineConfig
from repro.sim.stats import SimStats
from repro.tool import ToolOptions

#: A structurally valid (all-zero) stats payload for fake task functions.
EMPTY_STATS = SimStats(MemorySystem(MachineConfig())).to_dict()

#: Calls made to the counting fake task, keyed by spec hash.
_CALLS = []


def counting_task(spec):
    _CALLS.append(spec.content_hash())
    return {"stats": EMPTY_STATS, "wall_time": 0.25}


def marker_task(spec):
    """Fails (or sleeps, when parallel) until its marker file exists.

    The spec's ``workload`` field carries the marker path and its
    ``variant``-agnostic ``scale`` field selects the failure mode, so the
    one picklable module-level function serves every fault-injection
    test.
    """
    marker = Path(spec.workload)
    if not marker.exists():
        marker.write_text("attempted")
        if spec.scale == "small":     # "small" => transient exception
            raise RuntimeError("transient failure")
        time.sleep(2.5)               # otherwise: too slow, gets timed out
    return {"stats": EMPTY_STATS, "wall_time": 0.0}


def fake_spec(name="w", **kwargs):
    # Bypasses __post_init__ validation side effects by using real model/
    # variant names; only workload/scale carry fake payloads.
    return RunSpec(workload=name, **kwargs)


class TestRunSpec:
    def test_equal_specs_equal_hash(self):
        a = RunSpec.create("mcf", scale="tiny")
        b = RunSpec.create("mcf", scale="tiny")
        assert a == b
        assert a.content_hash() == b.content_hash()

    @pytest.mark.parametrize("change", [
        dict(workload="vpr"),
        dict(scale="default"),
        dict(model="ooo"),
        dict(variant="ssp"),
        dict(spawning=True),
        dict(tool_options=(("coverage", 0.5),)),
        dict(config_overrides=(("memory_latency", 100),)),
        dict(max_cycles=1000),
    ])
    def test_hash_changes_on_any_field(self, change):
        base = RunSpec(workload="mcf", scale="tiny")
        changed = dataclasses.replace(base, **change)
        assert changed.content_hash() != base.content_hash()

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            RunSpec(workload="mcf", model="vliw")

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            RunSpec(workload="mcf", variant="warp-speed")

    def test_spawning_derived_from_variant(self):
        assert not RunSpec(workload="m").effective_spawning
        assert RunSpec(workload="m", variant="ssp").effective_spawning
        assert RunSpec(workload="m", variant="hand").effective_spawning
        assert not RunSpec(workload="m",
                           variant="perfect_mem").effective_spawning
        assert RunSpec(workload="m", spawning=True).effective_spawning

    def test_freeze_options_order_insensitive(self):
        assert freeze_options({"b": 2, "a": 1}) == \
            freeze_options({"a": 1, "b": 2})

    def test_freeze_options_accepts_dataclass(self):
        frozen = freeze_options(ToolOptions(coverage=0.5))
        assert ("coverage", 0.5) in frozen

    def test_freeze_overrides_normalises_sequences(self):
        assert freeze_overrides({"perfect_load_uids": {3, 1}}) == \
            freeze_overrides([("perfect_load_uids", [1, 3])])

    def test_spec_is_picklable(self):
        import pickle
        spec = RunSpec.create("mcf", tool_options=ToolOptions())
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        spec = fake_spec()
        assert cache.get(spec) is None
        cache.put(spec, EMPTY_STATS, wall_time=1.5)
        entry = cache.get(spec)
        assert entry["stats"] == EMPTY_STATS
        assert entry["wall_time"] == 1.5

    def test_salt_partitions_generations(self, tmp_path):
        spec = fake_spec()
        ResultCache(root=tmp_path, salt="old").put(spec, EMPTY_STATS)
        assert ResultCache(root=tmp_path, salt="new").get(spec) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        spec = fake_spec()
        path = cache.put(spec, EMPTY_STATS)
        path.write_text("{not json")
        assert cache.get(spec) is None

    def test_stats_and_clear(self, tmp_path):
        cache = ResultCache(root=tmp_path, salt="cur")
        stale = ResultCache(root=tmp_path, salt="old")
        cache.put(fake_spec("a"), EMPTY_STATS)
        cache.put(fake_spec("b"), EMPTY_STATS)
        stale.put(fake_spec("a"), EMPTY_STATS)
        info = cache.stats()
        assert info["entries"] == 3
        assert {g["salt"]: g["entries"]
                for g in info["generations"]} == {"cur": 2, "old": 1}
        assert cache.clear(stale_only=True) == 1
        assert cache.stats()["entries"] == 2
        assert cache.clear() == 2
        assert cache.stats()["entries"] == 0

    def test_code_version_is_stable(self):
        assert code_version() == code_version()
        assert len(code_version()) == 16


class TestRunnerCaching:
    def test_cache_hit_skips_execution(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        spec = fake_spec()
        _CALLS.clear()
        first = Runner(cache=cache, task_fn=counting_task).run_one(spec)
        assert not first.cached and len(_CALLS) == 1
        second = Runner(cache=cache, task_fn=counting_task).run_one(spec)
        assert second.cached
        assert len(_CALLS) == 1, "cache hit must not re-simulate"
        assert second.stats.to_dict() == first.stats.to_dict()

    def test_duplicate_specs_coalesce(self, tmp_path):
        spec = fake_spec()
        _CALLS.clear()
        runner = Runner(cache=None, task_fn=counting_task)
        results = runner.run([spec, spec, spec])
        assert len(_CALLS) == 1
        assert all(r.ok for r in results)

    def test_telemetry_counters(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        runner = Runner(cache=cache, task_fn=counting_task)
        runner.run([fake_spec("a"), fake_spec("b")])
        runner.run([fake_spec("a"), fake_spec("c")])
        snap = runner.telemetry.snapshot()
        assert snap["launched"] == 3
        assert snap["cache_hits"] == 1
        assert snap["hit_rate"] == pytest.approx(0.25)
        assert snap["sim_wall_time"] == pytest.approx(0.75)
        assert snap["saved_wall_time"] == pytest.approx(0.25)


class TestRetryAndTimeout:
    def test_serial_retry_on_transient_failure(self, tmp_path):
        spec = fake_spec(str(tmp_path / "marker"), scale="small")
        runner = Runner(cache=None, retries=1, task_fn=marker_task)
        result = runner.run_one(spec)
        assert result.ok
        assert result.attempts == 2

    def test_serial_failure_exhausts_retries(self):
        def always_fails(spec):
            raise RuntimeError("boom")
        runner = Runner(cache=None, retries=2, task_fn=always_fails)
        result = runner.run_one(fake_spec())
        assert not result.ok
        assert result.attempts == 3
        assert "boom" in result.error
        with pytest.raises(RunnerError):
            runner.stats(fake_spec())

    def test_parallel_timeout_retried_serially(self, tmp_path):
        specs = [fake_spec(str(tmp_path / "m1"), scale="tiny"),
                 fake_spec(str(tmp_path / "m2"), scale="tiny")]
        runner = Runner(jobs=2, cache=None, timeout=0.3, retries=1,
                        task_fn=marker_task)
        results = runner.run(specs)
        assert all(r.ok for r in results)
        # Workers wrote the markers before sleeping; the serial retry in
        # this process found them and returned immediately.
        assert (tmp_path / "m1").exists() and (tmp_path / "m2").exists()
        assert runner.telemetry.retries >= 1

    def test_parallel_worker_exception_retried(self, tmp_path):
        spec = fake_spec(str(tmp_path / "m"), scale="small")
        runner = Runner(jobs=2, cache=None, retries=1,
                        task_fn=marker_task)
        results = runner.run([spec, fake_spec(str(tmp_path / "m_ok"),
                                              scale="small")])
        assert all(r.ok for r in results)


class TestSerialParallelParity:
    def test_real_specs_bit_identical(self):
        specs = [RunSpec.create("mcf", scale="tiny", model=m)
                 for m in ("inorder", "ooo")]
        serial = Runner(jobs=1, cache=None).run(specs)
        parallel = Runner(jobs=2, cache=None).run(specs)
        for s, p in zip(serial, parallel):
            assert s.ok and p.ok
            assert s.stats.to_dict() == p.stats.to_dict()


class TestExecuteSpec:
    def test_base_variant_runs(self):
        payload = execute_spec(RunSpec.create("mcf", scale="tiny"))
        assert payload["stats"]["cycles"] > 0
        assert payload["wall_time"] > 0

    def test_config_overrides_apply(self):
        slow = execute_spec(RunSpec.create(
            "mcf", scale="tiny",
            config_overrides={"memory_latency": 460}))
        fast = execute_spec(RunSpec.create("mcf", scale="tiny"))
        assert slow["stats"]["cycles"] > fast["stats"]["cycles"]

    def test_cached_entry_round_trips_stats(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        spec = RunSpec.create("mcf", scale="tiny")
        live = Runner(cache=cache).stats(spec)
        restored = Runner(cache=cache).run_one(spec)
        assert restored.cached
        assert restored.stats.to_dict() == live.to_dict()
        # The on-disk entry is plain JSON, re-loadable without the runner.
        entry = json.loads(
            (tmp_path / cache.salt /
             f"{spec.content_hash()}.json").read_text())
        assert entry["stats"]["cycles"] == live.cycles


class TestExperimentIntegration:
    def test_second_context_is_fully_cached(self, tmp_path):
        """The ISSUE acceptance check: a figure driver re-run launches
        zero simulations, everything served from the cache."""
        cache_root = tmp_path / "cache"
        cold = ExperimentContext(
            "tiny", runner=Runner(cache=ResultCache(root=cache_root)))
        first = figure8.run(context=cold, scale="tiny",
                            benchmarks=["mcf"])
        assert cold.telemetry.launched > 0

        clear_artifact_cache()   # simulate a fresh process
        warm = ExperimentContext(
            "tiny", runner=Runner(cache=ResultCache(root=cache_root)))
        second = figure8.run(context=warm, scale="tiny",
                             benchmarks=["mcf"])
        assert warm.telemetry.launched == 0
        assert warm.telemetry.cache_hits == cold.telemetry.launched
        assert first.rows == second.rows

    def test_context_memoises_stats_objects(self):
        context = ExperimentContext("tiny", runner=Runner(cache=None))
        run = context.run("mcf")
        assert run.stats("inorder", "base") is run.stats("inorder", "base")
        assert context.telemetry.memo_hits == 1
