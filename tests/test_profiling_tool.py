"""Tests for profile collection, delinquent selection, and the full tool."""

import pytest

from repro.profiling import collect_profile, select_delinquent_loads
from repro.sim import simulate
from repro.tool import SSPPostPassTool, ToolOptions
from repro.workloads import make_workload

from helpers import mcf_like_workload


def build_mcf_profile():
    prog, heap, out = mcf_like_workload(narcs=60, nnodes=16)

    def heap_factory():
        return mcf_like_workload(narcs=60, nnodes=16)[1]

    return prog, collect_profile(prog, heap_factory)


class TestProfileCollection:
    def test_cache_profile_has_the_loads(self):
        prog, profile = build_mcf_profile()
        loads = [i for i in prog.function("main").block("loop").instrs
                 if i.op == "ld"]
        for load in loads[:2]:
            assert profile.misses_of(load.uid) > 10
            assert profile.miss_cycles_of(load.uid) > 1000

    def test_block_frequencies(self):
        prog, profile = build_mcf_profile()
        assert profile.block_count("main", "loop") == 60
        assert profile.block_count("main", "entry") == 1

    def test_load_latency_map(self):
        prog, profile = build_mcf_profile()
        latency = profile.load_latency_map()
        loads = [i for i in prog.function("main").block("loop").instrs
                 if i.op == "ld"]
        assert latency[loads[0].uid] > 50  # mostly misses

    def test_baseline_cycles_positive(self):
        _, profile = build_mcf_profile()
        assert profile.baseline_cycles > 10_000

    def test_executions_counted(self):
        prog, profile = build_mcf_profile()
        loads = [i for i in prog.function("main").block("loop").instrs
                 if i.op == "ld"]
        assert profile.executions_of(loads[0].uid) == 60


class TestDelinquentSelection:
    def test_coverage_reached(self):
        prog, profile = build_mcf_profile()
        selected = select_delinquent_loads(profile, coverage=0.90,
                                           min_misses=1)
        covered = sum(profile.misses_of(uid) for uid in selected)
        assert covered / profile.total_misses() >= 0.90

    def test_min_miss_filter_limits_selection(self):
        prog, profile = build_mcf_profile()
        noisy = select_delinquent_loads(profile, coverage=0.999,
                                        min_misses=1)
        filtered = select_delinquent_loads(profile, coverage=0.999,
                                           min_misses=50)
        assert len(filtered) <= len(noisy)

    def test_max_loads_respected(self):
        prog, profile = build_mcf_profile()
        selected = select_delinquent_loads(profile, coverage=0.9999,
                                           max_loads=1)
        assert len(selected) == 1

    def test_ranked_by_misses(self):
        prog, profile = build_mcf_profile()
        selected = select_delinquent_loads(profile, coverage=0.9999,
                                           max_loads=10, min_misses=1)
        misses = [profile.misses_of(uid) for uid in selected]
        assert misses == sorted(misses, reverse=True)

    def test_empty_profile(self):
        from repro.profiling.profile import ProgramProfile
        prog, _, _ = mcf_like_workload(narcs=5, nnodes=5)
        profile = ProgramProfile(prog, {}, {}, {}, 0)
        assert select_delinquent_loads(profile) == []


class TestToolEndToEnd:
    @pytest.fixture(scope="class")
    def mcf(self):
        w = make_workload("mcf", "tiny")
        prog = w.build_program()
        profile = collect_profile(prog, w.build_heap)
        result = SSPPostPassTool().adapt(prog, profile)
        return w, prog, profile, result

    def test_finds_both_figure3_loads(self, mcf):
        w, prog, profile, result = mcf
        loop_loads = [i for i in
                      prog.function("main").block("arc_loop").instrs
                      if i.op == "ld"]
        assert set(result.delinquent_uids) >= {loop_loads[0].uid,
                                               loop_loads[1].uid}

    def test_decision_trace_recorded(self, mcf):
        _, _, _, result = mcf
        assert result.decisions
        selected = [d for d in result.decisions if d.selected]
        assert selected
        assert any(d.kind == "chaining" for d in selected)

    def test_combined_into_one_slice(self, mcf):
        _, _, _, result = mcf
        # Both delinquent loads share the arc loop -> one merged slice.
        arc_records = [r for r in result.adapted.records
                       if r.kind == "chaining"]
        assert len(arc_records) == 1
        covered = arc_records[0].scheduled.region_slice.delinquent_uids
        assert len(covered) >= 2

    def test_speedup_and_correctness(self, mcf):
        w, prog, profile, result = mcf
        heap = w.build_heap()
        stats = simulate(result.program, heap, "inorder")
        w.check_output(heap)
        assert profile.baseline_cycles / stats.cycles > 1.5

    def test_adaptation_is_idempotent_on_inputs(self, mcf):
        w, prog, profile, result = mcf
        again = SSPPostPassTool().adapt(prog, profile)
        assert again.delinquent_uids == result.delinquent_uids
        assert again.table2_row() == result.table2_row()

    def test_no_delinquent_loads_no_adaptation(self):
        from repro.isa import FunctionBuilder, Heap, Program
        prog = Program(entry="main")
        fb = FunctionBuilder(prog.add_function("main"))
        fb.mov_imm(1)
        fb.halt()
        prog.finalize()

        def heap_factory():
            return Heap(1 << 14)

        profile = collect_profile(prog, heap_factory)
        result = SSPPostPassTool().adapt(prog, profile)
        assert result.adapted is None
        assert result.delinquent_uids == []

    def test_disable_chaining_option(self, mcf):
        w, prog, profile, _ = mcf
        result = SSPPostPassTool(
            ToolOptions(disable_chaining=True)).adapt(prog, profile)
        assert set(result.kinds()) == {"basic"}

    def test_tight_live_in_budget_drops_slices(self, mcf):
        w, prog, profile, _ = mcf
        result = SSPPostPassTool(
            ToolOptions(max_live_ins=0)).adapt(prog, profile)
        assert result.adapted is None

    def test_small_trip_count_prefers_basic(self, mcf):
        w, prog, profile, _ = mcf
        result = SSPPostPassTool(
            ToolOptions(small_trip_count=1e9)).adapt(prog, profile)
        assert set(result.kinds()) == {"basic"}


class TestToolOnEveryWorkload:
    @pytest.mark.parametrize("name", ["em3d", "health", "mst",
                                      "treeadd.df", "treeadd.bf", "mcf",
                                      "vpr"])
    def test_adapts_cleanly_and_correctly(self, name):
        w = make_workload(name, "tiny")
        prog = w.build_program()
        profile = collect_profile(prog, w.build_heap)
        result = SSPPostPassTool().adapt(prog, profile)
        assert result.adapted is not None, f"{name}: no slices"
        heap = w.build_heap()
        stats = simulate(result.program, heap, "inorder")
        w.check_output(heap)  # speculation never corrupts the result
        assert stats.spawns > 0
