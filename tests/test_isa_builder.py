"""Tests for the IR builder, register conventions, and machine config."""

import pytest

from repro.isa import FunctionBuilder, Program
from repro.isa import registers as regs
from repro.sim.config import CacheConfig, inorder_config, ooo_config


class TestRegisterConventions:
    def test_arg_registers(self):
        assert regs.arg_register(0) == "r32"
        assert regs.arg_register(7) == "r39"
        with pytest.raises(ValueError):
            regs.arg_register(8)
        with pytest.raises(ValueError):
            regs.arg_register(-1)

    def test_temp_registers(self):
        assert regs.temp_register(0) == "r40"
        with pytest.raises(ValueError):
            regs.temp_register(200)

    def test_pred_registers(self):
        assert regs.pred_register(0) == "p1"  # p0 is hardwired true
        with pytest.raises(ValueError):
            regs.pred_register(100)

    def test_classification(self):
        assert regs.is_int_register("r0")
        assert regs.is_int_register("r127")
        assert not regs.is_int_register("p1")
        assert not regs.is_int_register("rax")
        assert regs.is_pred_register("p63")
        assert not regs.is_pred_register("r1")


class TestBuilder:
    def test_fresh_registers_unique(self):
        prog = Program()
        fb = FunctionBuilder(prog.add_function("f"))
        names = {fb.fresh() for _ in range(20)}
        assert len(names) == 20

    def test_fresh_exhaustion(self):
        prog = Program()
        fb = FunctionBuilder(prog.add_function("f"))
        with pytest.raises(ValueError):
            for _ in range(200):
                fb.fresh()

    def test_branch_splits_block(self):
        prog = Program()
        fb = FunctionBuilder(prog.add_function("f"))
        p = fb.cmp("eq", "r0", imm=0)
        fb.br_cond(p, "entry")
        fb.mov_imm(1)          # lands in an auto .fall block
        fb.halt()
        func = prog.function("f")
        labels = [b.label for b in func.blocks]
        assert len(labels) >= 2
        assert any(l.startswith(".fall") for l in labels)

    def test_explicit_label_replaces_empty_fall_block(self):
        prog = Program()
        fb = FunctionBuilder(prog.add_function("f"))
        fb.br("next")
        fb.label("next")       # the auto .fall block is dropped
        fb.halt()
        labels = [b.label for b in prog.function("f").blocks]
        assert "next" in labels
        assert sum(1 for l in labels if l.startswith(".fall")) <= 1

    def test_params_copy_incoming_args(self):
        prog = Program()
        fb = FunctionBuilder(prog.add_function("f", num_params=2))
        a, b = fb.params(2)
        assert a != regs.arg_register(0)
        instrs = list(prog.function("f").instructions())
        assert instrs[0].op == "mov" and instrs[0].srcs == ("r32",)

    def test_call_fresh_returns_value_register(self):
        prog = Program()
        g = FunctionBuilder(prog.add_function("g"))
        g.ret(g.mov_imm(9))
        fb = FunctionBuilder(prog.add_function("f"))
        r = fb.call_fresh("g")
        fb.halt()
        instrs = list(prog.function("f").instructions())
        movs = [i for i in instrs if i.op == "mov" and i.srcs == ("r8",)]
        assert movs and movs[0].dest == r

    def test_fresh_label_monotone(self):
        prog = Program()
        fb = FunctionBuilder(prog.add_function("f"))
        assert fb.fresh_label("x") != fb.fresh_label("x")


class TestMachineConfig:
    def test_cache_geometry(self):
        cfg = CacheConfig(16 * 1024, 4, 2)
        assert cfg.num_sets == 64

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 3, 2).num_sets

    def test_presets_differ(self):
        io, ooo = inorder_config(), ooo_config()
        assert not io.out_of_order and ooo.out_of_order
        assert ooo.pipeline_stages == io.pipeline_stages + 4
        assert io.issue_width == 6
        assert io.mispredict_penalty == io.pipeline_stages

    def test_perfect_variants_are_new_objects(self):
        base = inorder_config()
        pm = base.with_perfect_memory()
        pl = base.with_perfect_loads({1, 2})
        assert not base.perfect_memory
        assert pm.perfect_memory
        assert pl.perfect_load_uids == frozenset({1, 2})
        assert "perfect" in pm.name and "perfect" in pl.name

    def test_config_is_frozen(self):
        with pytest.raises(Exception):
            inorder_config().memory_latency = 5
