"""Tests for simulator extensions and edge cases: dynamic chk throttling
(the Section 4.4.1 future-work feature), spawn-wait bounding, spin-retry
chase loads, and SMT resource behaviour."""

import dataclasses

import pytest

from repro.profiling import collect_profile
from repro.sim import inorder_config, ooo_config, simulate
from repro.tool import SSPPostPassTool
from repro.workloads import make_workload

from helpers import mcf_like_workload


@pytest.fixture(scope="module")
def treeadd_adapted():
    w = make_workload("treeadd.df", "tiny")
    prog = w.build_program()
    profile = collect_profile(prog, w.build_heap)
    result = SSPPostPassTool().adapt(prog, profile)
    return w, result


class TestDynamicChkThrottle:
    def test_useless_trigger_suppressed(self, treeadd_adapted):
        w, result = treeadd_adapted
        pm = inorder_config().with_perfect_memory()
        plain = simulate(result.program, w.build_heap(), "inorder",
                         config=pm)
        throttled = simulate(
            result.program, w.build_heap(), "inorder",
            config=dataclasses.replace(pm, dynamic_chk_throttle=True))
        # Prefetching cannot help a perfect memory; the monitor notices
        # and later chk.c "return no available context".
        assert throttled.chk_fired <= pm.throttle_sample_fires + 1
        assert throttled.chk_fired < plain.chk_fired
        assert throttled.cycles < plain.cycles

    def test_useful_trigger_kept_alive(self, treeadd_adapted):
        w, result = treeadd_adapted
        plain = simulate(result.program, w.build_heap(), "inorder")
        throttled = simulate(
            result.program, w.build_heap(), "inorder",
            config=dataclasses.replace(inorder_config(),
                                       dynamic_chk_throttle=True))
        assert throttled.chk_fired == plain.chk_fired
        assert throttled.cycles == plain.cycles

    def test_throttle_off_by_default(self):
        assert not inorder_config().dynamic_chk_throttle


class TestSpawnWaitBounds:
    def test_chain_survives_context_pressure(self):
        """health-like per-call triggers once deadlocked all contexts;
        bounded waiting must keep the program finishing promptly."""
        w = make_workload("health", "tiny")
        prog = w.build_program()
        profile = collect_profile(prog, w.build_heap)
        result = SSPPostPassTool().adapt(prog, profile)
        heap = w.build_heap()
        stats = simulate(result.program, heap, "inorder")
        w.check_output(heap)
        assert stats.cycles < profile.baseline_cycles * 1.05
        assert stats.spawns > 50

    def test_spawn_wait_limit_exists(self):
        from repro.sim.inorder import InOrderSimulator
        assert InOrderSimulator.SPAWN_WAIT_LIMIT >= 100


class TestChaseRetry:
    def test_bfs_chain_runs_full_length(self):
        w = make_workload("treeadd.bf", "tiny")
        prog = w.build_program()
        profile = collect_profile(prog, w.build_heap)
        result = SSPPostPassTool().adapt(prog, profile)
        heap = w.build_heap()
        stats = simulate(result.program, heap, "inorder")
        w.check_output(heap)
        # The chain must survive the producer race: one spawn per node-ish.
        assert stats.spawns > w.layout["count"] // 2
        assert profile.baseline_cycles / stats.cycles > 2.0

    def test_retry_blocks_present_in_binary(self):
        w = make_workload("treeadd.bf", "tiny")
        prog = w.build_program()
        profile = collect_profile(prog, w.build_heap)
        result = SSPPostPassTool().adapt(prog, profile)
        labels = [b.label
                  for b in result.program.function("main").blocks]
        assert any(l.endswith(".retry") for l in labels)
        assert any(l.endswith(".go") for l in labels)


class TestSMTResourceSharing:
    def test_spec_threads_do_not_slow_busy_main(self):
        """With spawning disabled the adapted binary runs like the
        baseline; with it enabled, main-thread priority keeps the cost of
        coexisting speculative threads bounded."""
        prog, heap, out = mcf_like_workload(ssp=True, narcs=400,
                                            nnodes=100)
        on = simulate(prog, heap, "inorder")
        prog2, heap2, _ = mcf_like_workload(ssp=True, narcs=400,
                                            nnodes=100)
        off = simulate(prog2, heap2, "inorder", spawning=False)
        assert on.cycles < off.cycles  # prefetching wins overall

    def test_memory_ports_shared(self):
        """Two memory ops per cycle globally: a load-dense single thread
        cannot exceed 2 accesses/cycle."""
        from repro.isa import FunctionBuilder, Heap, Program
        prog = Program(entry="main")
        fb = FunctionBuilder(prog.add_function("main"))
        base = fb.mov_imm(0x2000)
        for i in range(40):
            fb.load(base, (i % 8) * 8, dest=f"r{60 + (i % 8)}")
        fb.halt()
        prog.finalize()
        heap = Heap(1 << 16)
        stats = simulate(prog, heap, "inorder",
                         config=inorder_config().with_perfect_memory())
        assert stats.cycles >= 40 / 2

    def test_int_units_shared(self):
        from repro.isa import FunctionBuilder, Heap, Program
        prog = Program(entry="main")
        fb = FunctionBuilder(prog.add_function("main"))
        for i in range(8):
            fb.mov_imm(0, dest=f"r{100 + i}")
        for _ in range(20):
            for i in range(8):  # 8 independent chains
                fb.add(f"r{100 + i}", imm=1, dest=f"r{100 + i}")
        fb.halt()
        prog.finalize()
        stats = simulate(prog, Heap(1 << 14), "inorder",
                         config=inorder_config().with_perfect_memory())
        # 160 ALU ops at 4 int units/cycle >= 40 cycles.
        assert stats.cycles >= 40


class TestOOOModelLimits:
    def test_rob_bounds_runahead(self):
        """Shrinking the ROB must reduce the OOO model's MLP advantage."""
        prog, heap, _ = mcf_like_workload(narcs=400, nnodes=100)
        big = simulate(prog, heap, "ooo", spawning=False)
        prog2, heap2, _ = mcf_like_workload(narcs=400, nnodes=100)
        small_cfg = dataclasses.replace(ooo_config(), rob_entries=12,
                                        rs_entries=4)
        small = simulate(prog2, heap2, "ooo", config=small_cfg,
                         spawning=False)
        assert small.cycles > big.cycles * 1.3

    def test_mispredict_costs_more_on_ooo(self):
        """OOO resolves branches at execute: data-dependent branches cost
        more than on the in-order model (which resolves at issue)."""
        import random
        from repro.isa import FunctionBuilder, Heap, Program

        def build():
            rng = random.Random(3)
            prog = Program(entry="main")
            fb = FunctionBuilder(prog.add_function("main"))
            heap = Heap(1 << 20)
            data = heap.alloc_array(400, 8)
            for i in range(400):
                heap.store(data + i * 8, rng.randrange(2))
            fb.mov_imm(data, dest="r100")
            fb.mov_imm(data + 400 * 8, dest="r101")
            fb.mov_imm(0, dest="r102")
            fb.label("loop")
            v = fb.load("r100", 0)
            p = fb.cmp("eq", v, imm=1)   # random: unpredictable
            fb.br_cond(p, "taken")
            fb.add("r102", imm=1, dest="r102")
            fb.label("taken")
            fb.add("r100", imm=8, dest="r100")
            q = fb.cmp("lt", "r100", "r101")
            fb.br_cond(q, "loop")
            fb.halt()
            prog.finalize()
            return prog, heap

        prog, heap = build()
        io = simulate(prog, heap, "inorder",
                      config=inorder_config().with_perfect_memory())
        prog2, heap2 = build()
        ooo = simulate(prog2, heap2, "ooo",
                       config=ooo_config().with_perfect_memory())
        assert io.mispredicts > 50 and ooo.mispredicts > 50
