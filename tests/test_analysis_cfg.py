"""Tests for CFG construction, dominance, loops, and control dependence."""

import pytest

from repro.analysis import (
    CFG,
    EXIT,
    control_dependences,
    dominator_tree,
    find_loops,
    innermost_loop,
    postdominator_tree,
)
from repro.isa import FunctionBuilder, Program


def diamond() -> CFG:
    """entry -> (then | else) -> join -> exit."""
    prog = Program()
    fb = FunctionBuilder(prog.add_function("f"))
    p = fb.cmp("eq", fb.mov_imm(1), imm=1)
    fb.br_cond(p, "then")
    fb.label("else")
    fb.mov_imm(2)
    fb.br("join")
    fb.label("then")
    fb.mov_imm(3)
    fb.label("join")
    fb.halt()
    return CFG(prog.function("f"))


def nested_loops() -> CFG:
    prog = Program()
    fb = FunctionBuilder(prog.add_function("f"))
    fb.mov_imm(0, dest="r100")
    fb.label("outer")
    fb.mov_imm(0, dest="r101")
    fb.label("inner")
    fb.add("r101", imm=1, dest="r101")
    pi = fb.cmp("lt", "r101", imm=10)
    fb.br_cond(pi, "inner")
    fb.add("r100", imm=1, dest="r100")
    po = fb.cmp("lt", "r100", imm=5)
    fb.br_cond(po, "outer")
    fb.halt()
    return CFG(prog.function("f"))


class TestCFG:
    def test_diamond_edges(self):
        cfg = diamond()
        assert set(cfg.successors("entry")) == {"then", "else"}
        assert cfg.successors("else") == ["join"]
        # 'then' falls through to 'join'.
        assert cfg.successors("then") == ["join"]
        assert cfg.successors("join") == [EXIT]

    def test_predecessors(self):
        cfg = diamond()
        assert set(cfg.predecessors("join")) == {"then", "else"}

    def test_reachability(self):
        prog = Program()
        fb = FunctionBuilder(prog.add_function("f"))
        fb.halt()
        fb.label("dead")
        fb.halt()
        cfg = CFG(prog.function("f"))
        assert "dead" not in cfg.reachable()

    def test_reverse_postorder_starts_at_entry(self):
        order = diamond().reverse_postorder()
        assert order[0] == "entry"
        assert order.index("join") > order.index("then")
        assert order.index("join") > order.index("else")


class TestDominance:
    def test_diamond_dominators(self):
        cfg = diamond()
        dom = dominator_tree(cfg)
        assert dom.idom["then"] == "entry"
        assert dom.idom["else"] == "entry"
        assert dom.idom["join"] == "entry"  # neither branch dominates
        assert dom.dominates("entry", "join")
        assert not dom.dominates("then", "join")

    def test_dominates_is_reflexive(self):
        dom = dominator_tree(diamond())
        assert dom.dominates("then", "then")

    def test_dominators_of_chain(self):
        cfg = nested_loops()
        dom = dominator_tree(cfg)
        chain = dom.dominators_of("inner")
        assert chain[0] == "inner"
        assert chain[-1] == "entry"
        assert "outer" in chain

    def test_postdominators(self):
        cfg = diamond()
        pdom = postdominator_tree(cfg)
        # join post-dominates both arms and the entry.
        assert pdom.dominates("join", "then")
        assert pdom.dominates("join", "entry")
        assert not pdom.dominates("then", "entry")


class TestControlDependence:
    def test_branch_controls_arms_not_join(self):
        cfg = diamond()
        cdeps = control_dependences(cfg)
        assert "entry" in cdeps["then"]
        assert "entry" in cdeps["else"]
        assert "entry" not in cdeps.get("join", set())

    def test_loop_controls_itself(self):
        cfg = nested_loops()
        cdeps = control_dependences(cfg)
        assert "inner" in cdeps["inner"]


class TestLoops:
    def test_nested_loops_found(self):
        cfg = nested_loops()
        loops = find_loops(cfg)
        headers = {l.header for l in loops}
        assert headers == {"outer", "inner"}

    def test_nesting_relationship(self):
        loops = find_loops(nested_loops())
        by_header = {l.header: l for l in loops}
        assert by_header["inner"].parent is by_header["outer"]
        assert by_header["inner"] in by_header["outer"].children
        assert by_header["outer"].depth == 1
        assert by_header["inner"].depth == 2

    def test_loop_bodies(self):
        loops = find_loops(nested_loops())
        by_header = {l.header: l for l in loops}
        assert "inner" in by_header["outer"].body
        assert "outer" not in by_header["inner"].body
        assert "entry" not in by_header["outer"].body

    def test_innermost_loop(self):
        loops = find_loops(nested_loops())
        inner = innermost_loop(loops, "inner")
        assert inner.header == "inner"
        outer = innermost_loop(loops, "outer")
        assert outer.header == "outer"
        assert innermost_loop(loops, "entry") is None

    def test_no_loops_in_diamond(self):
        assert find_loops(diamond()) == []
