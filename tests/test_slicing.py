"""Tests for context-sensitive, speculative, and region-based slicing."""

import pytest

from repro.analysis import CFG, CallGraph, DependenceGraph, RegionGraph
from repro.isa import FunctionBuilder, Program
from repro.slicing import (
    ContextSensitiveSlicer,
    executed_instruction_uids,
    live_in_registers,
    merge_region_slices,
    restrict_to_region,
)

from helpers import mcf_like_workload


def build_analyses(prog, indirect=None):
    cfgs, dgs = {}, {}
    for name, func in prog.functions.items():
        cfg = CFG(func)
        cfgs[name] = cfg
        dgs[name] = DependenceGraph(func, cfg)
    cg = CallGraph(prog, indirect)
    return cfgs, dgs, cg


class TestIntraproceduralSlicing:
    def setup_method(self):
        self.prog, _, _ = mcf_like_workload(narcs=30, nnodes=10)
        self.func = self.prog.function("main")
        _, self.dgs, self.cg = build_analyses(self.prog)
        self.slicer = ContextSensitiveSlicer(self.prog, self.cg, self.dgs)

    def test_slice_contains_address_chain(self):
        loads = [i for i in self.func.block("loop").instrs if i.op == "ld"]
        result = self.slicer.slice_load_address(loads[1], "main")
        uids = result.uids_in("main")
        ops = [self.dgs["main"].instr_of[u].op for u in uids]
        assert "ld" in ops       # the feeding load t->tail
        assert "add" in ops      # the induction update
        assert not result.interprocedural

    def test_slice_excludes_unrelated_computation(self):
        loads = [i for i in self.func.block("loop").instrs if i.op == "ld"]
        result = self.slicer.slice_load_address(loads[1], "main")
        uids = result.uids_in("main")
        # The accumulator add (r52) does not feed the address.
        acc = next(i for i in self.func.block("loop").instrs
                   if i.op == "add" and i.dest == "r52")
        assert acc.uid not in uids

    def test_slice_never_contains_stores(self):
        loads = [i for i in self.func.block("loop").instrs if i.op == "ld"]
        result = self.slicer.slice_load_address(loads[1], "main")
        for uid in result.uids_in("main"):
            assert not self.dgs["main"].instr_of[uid].is_store


class TestInterproceduralSlicing:
    def build(self):
        """main loops calling addr_of(key) whose return feeds a load."""
        prog = Program(entry="main")
        g = FunctionBuilder(prog.add_function("addr_of", num_params=2))
        key, base = g.params(2)
        off = g.shl(key, 3)
        g.ret(g.add(base, off))
        m = FunctionBuilder(prog.add_function("main"))
        m.mov_imm(0, dest="r100")
        m.mov_imm(0x2000, dest="r101")
        m.label("loop")
        addr = m.call_fresh("addr_of", ["r100", "r101"])
        m.load(addr, 0, dest="r102")
        m.add("r100", imm=1, dest="r100")
        p = m.cmp("lt", "r100", imm=10)
        m.br_cond(p, "loop")
        m.halt()
        prog.finalize()
        return prog

    def test_callee_summary_spliced(self):
        prog = self.build()
        _, dgs, cg = build_analyses(prog)
        slicer = ContextSensitiveSlicer(prog, cg, dgs)
        load = next(i for i in prog.function("main").instructions()
                    if i.op == "ld")
        result = slicer.slice_load_address(load, "main")
        assert result.interprocedural
        assert "addr_of" in result.callees
        callee_ops = [dgs["addr_of"].instr_of[u].op
                      for u in result.uids_in("addr_of")]
        assert "shl" in callee_ops and "add" in callee_ops

    def test_summary_reports_formals(self):
        prog = self.build()
        _, dgs, cg = build_analyses(prog)
        slicer = ContextSensitiveSlicer(prog, cg, dgs)
        summary = slicer.summary("addr_of")
        assert summary.formals == {0, 1}

    def test_recursive_summary_reaches_fixed_point(self):
        prog = Program(entry="main")
        r = FunctionBuilder(prog.add_function("walk", num_params=1))
        (n,) = r.params(1)
        p = r.cmp("eq", n, imm=0)
        r.br_cond(p, "base")
        nxt = r.load(n, 8)
        r.ret(r.call_fresh("walk", [nxt]))
        r.label("base")
        r.ret(n)
        m = FunctionBuilder(prog.add_function("main"))
        m.call_fresh("walk", [m.mov_imm(0x2000)])
        m.halt()
        prog.finalize()
        _, dgs, cg = build_analyses(prog)
        slicer = ContextSensitiveSlicer(prog, cg, dgs)
        summary = slicer.summary("walk")  # must terminate
        assert 0 in summary.formals

    def test_recursive_prefetch_substitution(self):
        """treeadd shape: the address formal maps to this activation's
        child loads at the self-call sites."""
        prog = Program(entry="main")
        t = FunctionBuilder(prog.add_function("tsum", num_params=1))
        (n,) = t.params(1)
        p = t.cmp("eq", n, imm=0)
        t.br_cond(p, "base")
        left = t.load(n, 8, dest="r110")
        right = t.load(n, 16, dest="r111")
        v = t.load(n, 0, dest="r112")
        a = t.call_fresh("tsum", ["r110"])
        b = t.call_fresh("tsum", ["r111"])
        t.ret(t.add(t.add(a, b), "r112"))
        t.label("base")
        t.ret(t.mov_imm(0))
        m = FunctionBuilder(prog.add_function("main"))
        m.call_fresh("tsum", [m.mov_imm(0x2000)])
        m.halt()
        prog.finalize()
        _, dgs, cg = build_analyses(prog)
        slicer = ContextSensitiveSlicer(prog, cg, dgs)
        value_load = next(i for i in prog.function("tsum").instructions()
                          if i.op == "ld" and i.imm == 0)
        result = slicer.slice_load_address(value_load, "tsum")
        producers = {dgs["tsum"].instr_of[uid].dest
                     for uid, _ in result.substituted_prefetches}
        assert producers == {"r110", "r111"}
        offsets = {off for _, off in result.substituted_prefetches}
        assert offsets == {0}


class TestSpeculativeSlicing:
    def test_cold_blocks_filtered(self):
        prog, _, _ = mcf_like_workload(narcs=30, nnodes=10)
        freq = {"main": {"entry": 1, "loop": 1000, ".fall1": 0}}
        allowed = executed_instruction_uids(prog, freq)
        fall = prog.function("main").block(".fall1")
        for instr in fall.instrs:
            assert instr.uid not in allowed
        for instr in prog.function("main").block("loop").instrs:
            assert instr.uid in allowed

    def test_unprofiled_function_kept(self):
        prog, _, _ = mcf_like_workload(narcs=30, nnodes=10)
        allowed = executed_instruction_uids(prog, {})
        assert all(i.uid in allowed
                   for i in prog.function("main").instructions())

    def test_never_executed_instruction_filtered(self):
        prog, _, _ = mcf_like_workload(narcs=30, nnodes=10)
        freq = {"main": {"entry": 1, "loop": 1000, ".fall1": 1}}
        loop_instrs = prog.function("main").block("loop").instrs
        counts = {i.uid: 5 for i in prog.instructions()}
        counts[loop_instrs[0].uid] = 0
        allowed = executed_instruction_uids(prog, freq,
                                            exec_counts=counts)
        assert loop_instrs[0].uid not in allowed


class TestRegionSlicing:
    def setup(self):
        self.prog, _, _ = mcf_like_workload(narcs=30, nnodes=10)
        self.func = self.prog.function("main")
        self.cfgs, self.dgs, self.cg = build_analyses(self.prog)
        self.rg = RegionGraph(self.prog, self.cg)
        self.slicer = ContextSensitiveSlicer(self.prog, self.cg, self.dgs)
        loads = [i for i in self.func.block("loop").instrs
                 if i.op == "ld"]
        self.loads = loads
        self.slices = [self.slicer.slice_load_address(l, "main")
                       for l in loads]
        self.region = self.rg.region_of_block("main", "loop")

    def test_restriction_drops_out_of_region_code(self):
        self.setup()
        rs = restrict_to_region(self.slices[1], self.region, self.rg,
                                self.dgs)
        blocks = {self.dgs["main"].block_of[i.uid] for i in rs.body}
        assert blocks == {"loop"}

    def test_restriction_none_when_load_outside(self):
        self.setup()
        entry_region = self.rg.proc_region["main"]
        # Build a fake region with only the entry block.
        from repro.analysis.regions import Region
        fake = Region("loop", "main", {"entry"})
        assert restrict_to_region(self.slices[1], fake, self.rg,
                                  self.dgs) is None

    def test_live_ins_of_region_slice(self):
        self.setup()
        rs = restrict_to_region(self.slices[1], self.region, self.rg,
                                self.dgs)
        live = live_in_registers(rs)
        assert "r50" in live   # arc cursor flows in from the preheader

    def test_merge_unions_bodies_and_delinquents(self):
        self.setup()
        rs = [restrict_to_region(s, self.region, self.rg, self.dgs)
              for s in self.slices]
        merged = merge_region_slices(rs)
        assert merged.delinquent_uids == {l.uid for l in self.loads}
        assert rs[0].body_uids <= merged.body_uids
        assert rs[1].body_uids <= merged.body_uids

    def test_merge_requires_same_region(self):
        self.setup()
        rs = restrict_to_region(self.slices[0], self.region, self.rg,
                                self.dgs)
        other_region_slice = restrict_to_region(
            self.slices[1], self.rg.proc_region["main"], self.rg, self.dgs)
        with pytest.raises(ValueError):
            merge_region_slices([rs, other_region_slice])

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_region_slices([])
