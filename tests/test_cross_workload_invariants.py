"""Cross-cutting invariants, checked on every benchmark's adaptation.

These are the end-to-end soundness properties the whole system rests on,
verified per workload rather than just on mcf:

* the emitted binary passes the Figure 7 structural verifier;
* it survives an assembler round trip with identical behaviour;
* with spawning disabled it computes the same result at (approximately)
  the same cost as the baseline — the adaptation is a pure overlay;
* speculation never changes the program's architectural result;
* the cycle accounting is exact on the in-order model.
"""

import pytest

from repro import (
    PAPER_ORDER,
    SSPPostPassTool,
    collect_profile,
    make_workload,
    simulate,
)
from repro.codegen import verify_adapted_binary
from repro.isa import round_trip


@pytest.fixture(scope="module", params=PAPER_ORDER)
def adapted(request):
    name = request.param
    w = make_workload(name, "tiny")
    prog = w.build_program()
    profile = collect_profile(prog, w.build_heap)
    result = SSPPostPassTool().adapt(prog, profile)
    assert result.adapted is not None, f"{name}: tool produced nothing"
    return name, w, prog, profile, result


class TestStructuralSoundness:
    def test_verifier_passes(self, adapted):
        name, _, _, _, result = adapted
        counts = verify_adapted_binary(result.program)
        assert counts["slices"] >= 1
        assert counts["triggers"] >= 1

    def test_stub_and_slice_per_record(self, adapted):
        name, _, _, _, result = adapted
        for record in result.adapted.records:
            func = result.program.function(
                record.scheduled.region_slice.region.function)
            assert func.has_block(record.stub_label)
            assert func.has_block(record.slice_label)

    def test_live_in_counts_within_buffer(self, adapted):
        from repro.isa.interp import LIB_SLOTS
        name, _, _, _, result = adapted
        for record in result.adapted.records:
            assert record.num_live_ins <= LIB_SLOTS


class TestAssemblerRoundTrip:
    def test_round_trip_identical_behaviour(self, adapted):
        name, w, _, _, result = adapted
        rt = round_trip(result.program)
        h1, h2 = w.build_heap(), w.build_heap()
        s1 = simulate(result.program, h1, "inorder")
        s2 = simulate(rt, h2, "inorder")
        assert s1.cycles == s2.cycles, f"{name}: round trip diverged"
        w.check_output(h2)


class TestOverlayProperty:
    def test_disabled_spawning_is_baseline(self, adapted):
        name, w, prog, profile, result = adapted
        heap = w.build_heap()
        off = simulate(result.program, heap, "inorder", spawning=False)
        w.check_output(heap)
        # chk.c as a nop: within 3% of the unadapted baseline.
        assert off.cycles <= profile.baseline_cycles * 1.03, \
            f"{name}: the dormant adaptation must be nearly free"

    def test_speculation_never_corrupts(self, adapted):
        name, w, _, _, result = adapted
        for model in ("inorder", "ooo"):
            heap = w.build_heap()
            simulate(result.program, heap, model)
            w.check_output(heap)


class TestAccountingExactness:
    def test_breakdown_sums(self, adapted):
        name, w, _, _, result = adapted
        stats = simulate(result.program, w.build_heap(), "inorder")
        assert sum(stats.cycle_breakdown.values()) == stats.cycles

    def test_figure9_fractions_bounded(self, adapted):
        name, w, _, _, result = adapted
        stats = simulate(result.program, w.build_heap(), "inorder")
        breakdown = stats.delinquent_breakdown(result.delinquent_uids)
        if breakdown:
            for key, value in breakdown.items():
                assert -1e-9 <= value <= 1.0 + 1e-9, (name, key, value)
