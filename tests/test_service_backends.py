"""Backend conformance suite: one contract, three implementations.

Every :class:`~repro.service.backend.CacheBackend` — the classic local
directory, the hash-prefix-sharded store, and the tiered local-over-
shared composite — must honour the same get/put/corruption/eviction
contract, so the tests here are parametrized over a backend factory and
run identically against all three.  Implementation-specific behaviour
(shard routing, tier promotion) gets its own focused classes below.
"""

import os
import time

import pytest

from repro.runner import RunSpec
from repro.runner.cache import CacheCounters
from repro.service import (
    LocalDirBackend,
    ShardedBackend,
    TieredBackend,
    backend_for,
)
from repro.sim.caches import MemorySystem
from repro.sim.config import MachineConfig
from repro.sim.stats import SimStats

EMPTY_STATS = SimStats(MemorySystem(MachineConfig())).to_dict()

SALT = "saltsalt00000000"


def make_backend(kind, root):
    if kind == "local":
        return LocalDirBackend(root=root / "store", salt=SALT)
    if kind == "sharded":
        return ShardedBackend.create(root / "store", 4, salt=SALT)
    assert kind == "tiered"
    return TieredBackend(
        LocalDirBackend(root=root / "local", salt=SALT),
        LocalDirBackend(root=root / "shared", salt=SALT))


def spec_n(i):
    return RunSpec(workload=f"wl-{i}")


def entry_files(root, spec):
    """Every on-disk copy of a spec's entry (tiered keeps two)."""
    return sorted(root.rglob(f"{spec.content_hash()}.json"))


@pytest.fixture(params=["local", "sharded", "tiered"])
def backend(request, tmp_path):
    return make_backend(request.param, tmp_path)


class TestBackendContract:
    def test_miss_then_roundtrip(self, backend):
        spec = spec_n(0)
        assert backend.get(spec) is None
        backend.put(spec, EMPTY_STATS, wall_time=1.5, metrics={"m": 1})
        entry = backend.get(spec)
        assert entry["stats"] == EMPTY_STATS
        assert entry["wall_time"] == 1.5
        assert entry["metrics"] == {"m": 1}
        assert entry["spec"] == spec.key()

    def test_counters_track_traffic(self, backend):
        spec = spec_n(1)
        backend.get(spec)                      # miss
        backend.put(spec, EMPTY_STATS)
        backend.get(spec)                      # hit
        counters = backend.counters
        assert counters.misses >= 1
        assert counters.puts >= 1
        assert counters.hits >= 1

    def test_counters_snapshot_shape(self, backend):
        snap = backend.counters_snapshot()
        assert snap["kind"] == backend.kind
        for field in CacheCounters.FIELDS:
            assert field in snap

    def test_corrupt_entry_quarantined_and_remissable(self, backend,
                                                      tmp_path):
        spec = spec_n(2)
        backend.put(spec, EMPTY_STATS)
        for path in entry_files(tmp_path, spec):
            path.write_text("{torn", encoding="utf-8")
        assert backend.get(spec) is None
        bad = list(tmp_path.rglob(f"{spec.content_hash()}.json.bad"))
        assert bad, "corrupt entry should be quarantined, not deleted"
        assert backend.stats()["quarantined"] >= 1
        # The address is usable again: re-simulate, re-store, re-serve.
        backend.put(spec, EMPTY_STATS)
        assert backend.get(spec)["stats"] == EMPTY_STATS

    def test_clear_stale_reaps_quarantined(self, backend, tmp_path):
        keep, corrupt = spec_n(3), spec_n(4)
        backend.put(keep, EMPTY_STATS)
        backend.put(corrupt, EMPTY_STATS)
        for path in entry_files(tmp_path, corrupt):
            path.write_text("not json", encoding="utf-8")
        backend.get(corrupt)
        assert backend.stats()["quarantined"] >= 1
        removed = backend.clear(stale_only=True)
        assert removed >= 1
        assert backend.stats()["quarantined"] == 0
        assert backend.get(keep) is not None

    def test_clear_removes_everything(self, backend):
        for i in range(4):
            backend.put(spec_n(i), EMPTY_STATS)
        assert backend.clear() >= 4
        assert backend.stats()["entries"] == 0
        assert all(backend.get(spec_n(i)) is None for i in range(4))

    def test_evict_by_age(self, backend, tmp_path):
        old, fresh = spec_n(5), spec_n(6)
        backend.put(old, EMPTY_STATS)
        backend.put(fresh, EMPTY_STATS)
        past = time.time() - 10_000
        for path in entry_files(tmp_path, old):
            os.utime(path, (past, past))
        evicted = backend.evict(max_age=1_000)
        assert evicted >= 1
        assert backend.get(old) is None
        assert backend.get(fresh) is not None
        assert backend.counters.evictions >= 1

    def test_evict_by_size_sheds_coldest_first(self, backend, tmp_path):
        for i in range(6):
            backend.put(spec_n(i), EMPTY_STATS)
        coldest = spec_n(0)
        past = time.time() - 10_000
        for path in entry_files(tmp_path, coldest):
            os.utime(path, (past, past))
        assert backend.evict(max_bytes=0) >= 6
        assert backend.stats()["entries"] == 0

    def test_evict_without_bounds_is_noop(self, backend):
        backend.put(spec_n(7), EMPTY_STATS)
        assert backend.evict() == 0
        assert backend.get(spec_n(7)) is not None

    def test_stats_occupancy(self, backend):
        for i in range(3):
            backend.put(spec_n(i), EMPTY_STATS)
        info = backend.stats()
        assert info["kind"] == backend.kind
        assert info["entries"] == 3
        assert info["bytes"] > 0
        assert info["quarantined"] == 0

    def test_concurrent_identical_puts_converge(self, backend):
        # At-least-once execution means two workers may both write the
        # same address; the entry must stay valid JSON with the same
        # stats either way.
        spec = spec_n(8)
        backend.put(spec, EMPTY_STATS, wall_time=1.0)
        backend.put(spec, EMPTY_STATS, wall_time=2.0)
        entry = backend.get(spec)
        assert entry["stats"] == EMPTY_STATS


class TestShardedBackend:
    def test_distribution_covers_shards(self, tmp_path):
        backend = ShardedBackend.create(tmp_path, 4, salt=SALT)
        specs = [spec_n(i) for i in range(32)]
        for spec in specs:
            backend.put(spec, EMPTY_STATS)
        occupied = {id(backend.shard_for(spec)) for spec in specs}
        assert len(occupied) > 1, "32 hashes should span several shards"
        info = backend.stats()
        assert info["entries"] == 32
        assert sum(s["entries"] for s in info["shards"]) == 32

    def test_routing_is_deterministic(self, tmp_path):
        a = ShardedBackend.create(tmp_path / "a", 4, salt=SALT)
        b = ShardedBackend.create(tmp_path / "b", 4, salt=SALT)
        for i in range(16):
            spec = spec_n(i)
            assert (a.shards.index(a.shard_for(spec))
                    == b.shards.index(b.shard_for(spec)))

    def test_entry_lands_in_its_shard_only(self, tmp_path):
        backend = ShardedBackend.create(tmp_path, 4, salt=SALT)
        spec = spec_n(0)
        path = backend.put(spec, EMPTY_STATS)
        home = backend.shard_for(spec)
        assert str(path).startswith(str(home.root))
        others = [s for s in backend.shards if s is not home]
        assert all(s.get(spec) is None for s in others)
        assert backend.get(spec) is not None

    def test_needs_at_least_one_root(self):
        with pytest.raises(ValueError):
            ShardedBackend([])


class TestTieredBackend:
    def make(self, tmp_path):
        return TieredBackend(
            LocalDirBackend(root=tmp_path / "local", salt=SALT),
            LocalDirBackend(root=tmp_path / "shared", salt=SALT))

    def test_write_through_lands_in_both_tiers(self, tmp_path):
        backend = self.make(tmp_path)
        spec = spec_n(0)
        path = backend.put(spec, EMPTY_STATS)
        # The returned path is the shared (authoritative) copy.
        assert str(path).startswith(str(tmp_path / "shared"))
        assert backend.local.get(spec) is not None
        assert backend.shared.get(spec) is not None

    def test_shared_hit_promotes_to_local(self, tmp_path):
        backend = self.make(tmp_path)
        spec = spec_n(1)
        backend.shared.put(spec, EMPTY_STATS, wall_time=3.0)
        assert backend.local.get(spec) is None
        entry = backend.get(spec)
        assert entry["wall_time"] == 3.0
        assert backend.counters.promotions == 1
        assert backend.local.get(spec) is not None
        # Second read is served without another promotion.
        backend.get(spec)
        assert backend.counters.promotions == 1

    def test_snapshot_nests_tier_counters(self, tmp_path):
        backend = self.make(tmp_path)
        backend.put(spec_n(2), EMPTY_STATS)
        snap = backend.counters_snapshot()
        assert snap["kind"] == "tiered"
        assert snap["local"]["kind"] == "local"
        assert snap["shared"]["kind"] == "local"
        assert snap["local"]["puts"] == 1
        assert snap["shared"]["puts"] == 1


class TestBackendFor:
    def test_flat_by_default(self, tmp_path):
        backend = backend_for(tmp_path / "svc")
        assert backend.kind == "local"
        assert str(backend.root) == str(tmp_path / "svc" / "cache")

    def test_sharded_when_asked(self, tmp_path):
        backend = backend_for(tmp_path / "svc", shards=3)
        assert backend.kind == "sharded"
        assert len(backend.shards) == 3

    def test_tiered_wraps_either(self, tmp_path):
        backend = backend_for(tmp_path / "svc", shards=2,
                              local_tier=tmp_path / "fast")
        assert backend.kind == "tiered"
        assert backend.shared.kind == "sharded"
        assert str(backend.local.root) == str(tmp_path / "fast")

    def test_shared_root_interoperates(self, tmp_path):
        # Two hosts: one flat view, one tiered view of the same root.
        writer = backend_for(tmp_path / "svc")
        reader = backend_for(tmp_path / "svc",
                             local_tier=tmp_path / "host2")
        spec = spec_n(0)
        writer.put(spec, EMPTY_STATS)
        assert reader.get(spec)["stats"] == EMPTY_STATS
