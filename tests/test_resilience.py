"""Resilience layer: checkpoint/resume, watchdog supervision, ladder.

Covers the contracts ISSUE/README promise: a snapshot restored into a
fresh simulator finishes with byte-identical statistics; a SIGKILLed run
resumes from its last good checkpoint; flipping any byte of a checkpoint
file makes ``restore`` refuse it; hung workers are killed by the
watchdog and the circuit breaker trips the spec to serial execution;
resource blowouts walk the degradation ladder down to the unadapted
binary instead of failing.
"""

import json
import os
import pickle
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.guard import injecting
from repro.guard.errors import CheckpointError
from repro.resilience import (
    LADDER,
    STEP_BASIC,
    STEP_FULL,
    STEP_TOP1,
    STEP_UNADAPTED,
    CheckpointStore,
    ResilienceConfig,
    degrade_spec,
    ladder_applies,
    ladder_steps,
    next_step,
)
from repro.runner import ResultCache, Runner, RunSpec, WorkerTask, execute_task
from repro.runner.worker import artifacts_for, config_for
from repro.sim.machine import make_simulator

SRC_DIR = Path(__file__).resolve().parents[1] / "src"


def _fresh_sim(spec: RunSpec):
    """A simulator (and its heap-owning workload) built from the spec.

    Reuses the per-process artifact memo, so every simulator built here
    for the same spec shares one program (and one uid numbering)."""
    artifacts = artifacts_for(spec)
    program, workload = artifacts.run_inputs(spec.variant)
    sim = make_simulator(program, workload.build_heap(), spec.model,
                         config=config_for(spec, artifacts),
                         spawning=spec.effective_spawning,
                         max_cycles=spec.max_cycles)
    return sim, workload


# ---------------------------------------------------------------------------
# checkpoint round trip: snapshot -> restore -> identical statistics
# ---------------------------------------------------------------------------

ROUNDTRIP_CASES = [
    ("mcf", "inorder", "base"),
    ("mst", "inorder", "base"),
    ("treeadd.df", "inorder", "base"),
    ("mcf", "inorder", "ssp"),
    ("mcf", "ooo", "base"),
    ("mst", "ooo", "base"),
    ("treeadd.df", "ooo", "base"),
    ("treeadd.df", "ooo", "ssp"),
]


@pytest.mark.parametrize("workload,model,variant", ROUNDTRIP_CASES)
def test_checkpoint_roundtrip_is_lossless(workload, model, variant):
    spec = RunSpec.create(workload, scale="tiny", model=model,
                          variant=variant)
    golden_sim, _ = _fresh_sim(spec)
    golden = golden_sim.run()
    assert golden.cycles > 0

    # A mid-run snapshot must not perturb the run it interrupts.  The
    # snapshot aliases live simulator state, so it is pickled at capture
    # time — exactly what the checkpoint file format does.
    snapped_sim, _ = _fresh_sim(spec)
    snaps = []

    def grab(running):
        if not snaps:
            snaps.append((running.cycle,
                          pickle.dumps(running.snapshot())))

    interval = max(1, golden.cycles // 3)
    stats = snapped_sim.run(checkpoint_every=interval, on_checkpoint=grab)
    assert snaps, "checkpoint callback never fired"
    assert stats.equal_to(golden)

    # ... and restoring it into a *fresh* simulator must finish the run
    # with byte-identical statistics and a correct final heap.
    cycle, frozen = snaps[0]
    snapshot = pickle.loads(frozen)
    assert 0 < cycle < golden.cycles
    resumed_sim, resumed_workload = _fresh_sim(spec)
    resumed_sim.restore(snapshot)
    resumed = resumed_sim.run()
    assert resumed.equal_to(golden), (
        f"{spec.label()}: stats diverged after restore at cycle {cycle}")
    if variant in ("base", "ssp"):
        resumed_workload.check_output(resumed_sim.heap)


@pytest.mark.parametrize("model", ["inorder", "ooo"])
def test_fuzz_kernel_checkpoint_roundtrip(model):
    # Randomly generated pointer-chasing kernels (the pipeline fuzzer's
    # workloads) must round-trip too, not just the curated benchmarks.
    from repro.check.fuzz import FuzzWorkload

    for seed in (11, 42, 20020617):
        workload = FuzzWorkload(seed)
        program = workload.build_program()
        golden = make_simulator(program, workload.build_heap(), model,
                                spawning=False).run()
        sim = make_simulator(program, workload.build_heap(), model,
                             spawning=False)
        snaps = []
        sim.run(checkpoint_every=max(1, golden.cycles // 2),
                on_checkpoint=lambda s: snaps.append(
                    pickle.dumps(s.snapshot())) if not snaps else None)
        assert snaps, f"seed {seed}: no checkpoint fired"
        resumed_sim = make_simulator(program, workload.build_heap(), model,
                                     spawning=False)
        resumed_sim.restore(pickle.loads(snaps[0]))
        resumed = resumed_sim.run()
        assert resumed.equal_to(golden), f"seed {seed} diverged"
        workload.check_output(resumed_sim.heap)


def test_execute_task_resumes_from_saved_checkpoint(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
    spec = RunSpec.create("mst", scale="tiny", model="inorder",
                          variant="base")
    golden = execute_task(WorkerTask(spec=spec))

    # Plant a genuine mid-run checkpoint under the spec's key, then ask
    # the worker to resume: it must pick the checkpoint up, finish from
    # there, and report identical statistics.
    sim, _ = _fresh_sim(spec)
    snaps = []

    def grab(running):
        if not snaps:
            snaps.append((running.cycle,
                          pickle.dumps(running.snapshot())))

    sim.run(checkpoint_every=max(1, golden["stats"]["cycles"] // 2),
            on_checkpoint=grab)
    cycle, frozen = snaps[0]
    CheckpointStore().save(spec.content_hash(),
                           {"state": pickle.loads(frozen)},
                           cycle=cycle, label=spec.label())

    payload = execute_task(WorkerTask(spec=spec, resume=True))
    assert payload["resilience"]["resumed_from_cycle"] == cycle
    assert payload["resilience"]["checkpoint_errors"] == []
    assert payload["stats"] == golden["stats"]


# ---------------------------------------------------------------------------
# kill -9 mid-run, then resume
# ---------------------------------------------------------------------------

_VICTIM = """
import json, sys
from repro.runner import RunSpec, WorkerTask, execute_task
spec = RunSpec.create("mcf", scale="tiny", model="inorder", variant="base")
mode = sys.argv[1]
task = WorkerTask(spec=spec)
if mode in ("checkpoint", "resume"):
    task.checkpoint_every = 2000
if mode == "resume":
    task.resume = True
payload = execute_task(task)
print(json.dumps({"stats": payload["stats"],
                  "resumed": payload["resilience"]["resumed_from_cycle"]},
                 sort_keys=True))
"""


def _run_victim(script: Path, mode: str, env: dict) -> dict:
    out = subprocess.run([sys.executable, str(script), mode], env=env,
                         capture_output=True, text=True, timeout=120)
    assert out.returncode == 0, out.stderr
    return json.loads(out.stdout.strip().splitlines()[-1])


def test_sigkilled_run_resumes_to_identical_stats(tmp_path):
    """SIGKILL an in-order mcf run mid-simulation; the resumed run must
    land on byte-identical SimStats to an uninterrupted one.

    Every run happens in its own fresh interpreter so all three build
    identical artifacts (instruction uids are process-global and depend
    on build order)."""
    script = tmp_path / "victim.py"
    script.write_text(_VICTIM, encoding="utf-8")
    ckpt_root = tmp_path / "ckpt"
    env = dict(os.environ, PYTHONPATH=str(SRC_DIR), REPRO_NO_CACHE="1",
               REPRO_CHECKPOINT_DIR=str(ckpt_root))

    golden = _run_victim(script, "plain", env)
    assert golden["resumed"] is None

    # Kill the checkpointing run as soon as its first checkpoint lands.
    proc = subprocess.Popen([sys.executable, str(script), "checkpoint"],
                            env=env, stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + 60
    try:
        while not list(ckpt_root.rglob("*.ckpt")):
            assert proc.poll() is None, \
                "run finished before a checkpoint could be observed"
            assert time.monotonic() < deadline, "no checkpoint appeared"
            time.sleep(0.002)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on failure
            proc.kill()
    assert proc.returncode == -signal.SIGKILL
    assert list(ckpt_root.rglob("*.ckpt")), "checkpoint lost by the kill"

    resumed = _run_victim(script, "resume", env)
    assert resumed["resumed"] is not None and resumed["resumed"] > 0
    assert resumed["stats"] == golden["stats"]
    # A completed run retires its checkpoints.
    assert not list(ckpt_root.rglob("*.ckpt"))


# Supervisor process that parks one worker in a long sleep.  The worker
# reports its own pid through a file so the test outside can watch it die.
_ORPHAN_SUPERVISOR = """
import os, sys, time
from repro.resilience import ResilienceConfig, Supervisor

pid_file = sys.argv[1]

class SleepSpec:
    def content_hash(self):
        return "f" * 64
    def label(self):
        return "orphan/regression"

def task_fn(task):
    tmp = pid_file + ".tmp"
    with open(tmp, "w") as fh:
        fh.write(str(os.getpid()))
    os.replace(tmp, pid_file)
    time.sleep(600)
    return {"stats": {}}

def make_task(**kwargs):
    return kwargs

config = ResilienceConfig(heartbeat_timeout=900.0, poll_interval=0.02)
Supervisor(config, task_fn, make_task, jobs=1).run([SleepSpec()])
"""


@pytest.mark.skipif(not sys.platform.startswith("linux"),
                    reason="worker pdeathsig is Linux-only")
def test_worker_dies_when_supervisor_is_sigkilled(tmp_path):
    """A SIGKILLed supervisor must not leave an orphaned worker behind.

    Without PR_SET_PDEATHSIG the orphan keeps simulating and eventually
    *retires the checkpoints* the killed run left for its replacement —
    ``daemon=True`` only covers clean interpreter exits."""
    script = tmp_path / "supervisor.py"
    script.write_text(_ORPHAN_SUPERVISOR, encoding="utf-8")
    pid_file = tmp_path / "worker.pid"
    env = dict(os.environ, PYTHONPATH=str(SRC_DIR))
    proc = subprocess.Popen([sys.executable, str(script), str(pid_file)],
                            env=env, stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    try:
        deadline = time.monotonic() + 60
        while not pid_file.exists():
            assert proc.poll() is None, "supervisor died before launching"
            assert time.monotonic() < deadline, "worker never started"
            time.sleep(0.01)
        worker_pid = int(pid_file.read_text())
        os.kill(worker_pid, 0)  # alive (or this raises)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            try:
                os.kill(worker_pid, 0)
            except ProcessLookupError:
                break
            time.sleep(0.05)
        else:
            os.kill(worker_pid, signal.SIGKILL)  # don't leak it
            pytest.fail("worker survived its supervisor's SIGKILL")
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on failure
            proc.kill()


# ---------------------------------------------------------------------------
# checkpoint integrity: any damaged byte is refused
# ---------------------------------------------------------------------------

def test_corrupting_any_byte_is_refused(tmp_path):
    store = CheckpointStore(root=tmp_path, salt="test")
    store.save("key", {"state": {"cycle": 7, "regs": [1, 2, 3]}},
               cycle=7, label="unit")
    path = store.path_for("key")
    pristine = path.read_bytes()
    for offset in range(len(pristine)):
        damaged = bytearray(pristine)
        damaged[offset] ^= 0xFF
        path.write_bytes(bytes(damaged))
        with pytest.raises(CheckpointError):
            store.read_file(path)
    path.write_bytes(pristine)
    payload, header = store.load("key")
    assert payload == {"state": {"cycle": 7, "regs": [1, 2, 3]}}
    assert header["cycle"] == 7


def test_truncation_and_junk_are_refused(tmp_path):
    store = CheckpointStore(root=tmp_path, salt="test")
    store.save("key", {"v": 1}, cycle=1)
    path = store.path_for("key")
    data = path.read_bytes()
    for bad in (b"", data[:10], data[:-1], b"junk" * 20):
        path.write_bytes(bad)
        with pytest.raises(CheckpointError):
            store.read_file(path)


def test_corrupt_current_falls_back_to_previous_generation(tmp_path):
    store = CheckpointStore(root=tmp_path, salt="test")
    store.save("key", {"gen": 1}, cycle=10)
    store.save("key", {"gen": 2}, cycle=20)  # rotates gen 1 to .prev
    path = store.path_for("key")
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0xFF
    path.write_bytes(bytes(data))
    errors = []
    payload, header = store.load("key", errors)
    assert payload == {"gen": 1} and header["cycle"] == 10
    assert errors, "the damaged current generation must be diagnosed"


def test_checkpoint_corrupt_injection_forces_fresh_start(tmp_path):
    # With only one generation on disk, the chaos site leaves nothing to
    # fall back to: load reports the damage and returns None (fresh run).
    store = CheckpointStore(root=tmp_path, salt="test")
    store.save("key", {"v": 1}, cycle=5)
    errors = []
    with injecting("checkpoint.corrupt"):
        loaded = store.load("key", errors)
    assert loaded is None
    assert errors


def test_wrong_code_version_is_refused(tmp_path):
    writer = CheckpointStore(root=tmp_path, salt="v1")
    writer.save("key", {"v": 1}, cycle=5)
    reader = CheckpointStore(root=tmp_path, salt="v2")
    with pytest.raises(CheckpointError):
        reader.read_file(writer.path_for("key"))


def test_list_runs_and_discard(tmp_path):
    store = CheckpointStore(root=tmp_path, salt="test")
    assert store.list_runs() == []
    store.save("abc123", {"v": 1}, cycle=4096, label="mcf/tiny")
    runs = store.list_runs()
    assert len(runs) == 1
    entry = runs[0]
    assert entry["valid"] and entry["key"] == "abc123"
    assert entry["cycle"] == 4096 and entry["label"] == "mcf/tiny"
    store.discard("abc123")
    assert store.list_runs() == []


# ---------------------------------------------------------------------------
# supervisor: watchdog, circuit breaker, degradation ladder
# ---------------------------------------------------------------------------

def test_watchdog_kills_hung_worker_and_breaker_trips_to_serial():
    spec = RunSpec.create("mcf", scale="tiny", model="inorder",
                          variant="base")
    config = ResilienceConfig(heartbeat_timeout=1.0, poll_interval=0.02,
                              breaker_threshold=2, backoff_base=0.05,
                              backoff_max=0.1)
    runner = Runner(jobs=2, cache=None, resilience=config)
    # Two hangs: the watchdog kills both parallel attempts, the breaker
    # trips the spec to serial, and the (now fault-free) serial attempt
    # completes the run.
    with injecting("worker.hang:1:2"):
        result = runner.run_one(spec)
    assert result.ok, result.error
    meta = result.metrics["resilience"]
    assert meta["watchdog_kills"] >= 1
    assert meta["serial"] is True
    assert meta["ladder_step"] == STEP_FULL
    counters = runner.telemetry.snapshot()["resilience"]
    assert counters["watchdog_kills"] >= 1
    assert counters["circuit_trips"] == 1
    assert counters["skips"] == 0


def test_oom_walks_the_ladder_down_to_unadapted():
    spec = RunSpec.create("mcf", scale="tiny", model="inorder",
                          variant="ssp")
    config = ResilienceConfig(backoff_base=0.01, backoff_max=0.02)
    runner = Runner(jobs=1, cache=None, resilience=config)
    # Three OOMs in a row: full -> basic -> top1 -> unadapted, where the
    # exhausted fault plan finally lets the run complete.
    with injecting("worker.oom:1:3"):
        result = runner.run_one(spec)
    assert result.ok, result.error
    meta = result.metrics["resilience"]
    assert meta["ladder_step"] == STEP_UNADAPTED
    assert meta["executed_spec"]["variant"] == "base"
    counters = runner.telemetry.snapshot()["resilience"]
    assert counters["degraded_runs"] == 3
    assert counters["skips"] == 0


def test_unrecoverable_spec_is_skipped_with_diagnostic():
    spec = RunSpec.create("mcf", scale="tiny", model="inorder",
                          variant="base")
    config = ResilienceConfig(backoff_base=0.01, backoff_max=0.02,
                              breaker_threshold=1, max_attempts=4)
    runner = Runner(jobs=1, cache=None, resilience=config)
    # base has no ladder to descend; once serial also fails, skip.
    with injecting("worker.oom"):
        result = runner.run_one(spec)
    assert not result.ok
    assert "oom" in result.error or "memory" in result.error.lower()
    meta = result.metrics["resilience"]
    assert meta["skipped"] is True
    assert runner.telemetry.snapshot()["resilience"]["skips"] == 1


# ---------------------------------------------------------------------------
# degradation ladder unit behaviour
# ---------------------------------------------------------------------------

def test_ladder_steps_per_variant():
    ssp = RunSpec.create("mcf", scale="tiny", variant="ssp")
    hand = RunSpec.create("mcf.hand", scale="tiny", variant="hand")
    base = RunSpec.create("mcf", scale="tiny", variant="base")
    assert ladder_steps(ssp) == LADDER
    assert ladder_steps(hand) == (STEP_FULL, STEP_UNADAPTED)
    assert ladder_steps(base) == (STEP_FULL,)
    assert ladder_applies(ssp) and ladder_applies(hand)
    assert not ladder_applies(base)
    assert next_step(STEP_FULL) == STEP_BASIC
    assert next_step(STEP_TOP1) == STEP_UNADAPTED
    assert next_step(STEP_UNADAPTED) is None


def test_degraded_specs_have_distinct_content_hashes():
    ssp = RunSpec.create("mcf", scale="tiny", variant="ssp")
    basic = degrade_spec(ssp, STEP_BASIC)
    top1 = degrade_spec(ssp, STEP_TOP1)
    unadapted = degrade_spec(ssp, STEP_UNADAPTED)
    assert degrade_spec(ssp, STEP_FULL) is ssp
    assert dict(basic.tool_options)["disable_chaining"] is True
    assert dict(top1.tool_options)["max_delinquent_loads"] == 1
    assert unadapted.variant == "base"
    assert not unadapted.effective_spawning
    hashes = {s.content_hash() for s in (ssp, basic, top1, unadapted)}
    assert len(hashes) == 4


def test_degrade_preserves_existing_tool_options():
    ssp = RunSpec.create("mcf", scale="tiny", variant="ssp",
                         tool_options={"max_slice_size": 24})
    basic = degrade_spec(ssp, STEP_BASIC)
    options = dict(basic.tool_options)
    assert options["max_slice_size"] == 24
    assert options["disable_chaining"] is True


# ---------------------------------------------------------------------------
# crash-safe result cache
# ---------------------------------------------------------------------------

def test_cache_put_is_locked_and_clear_removes_locks(tmp_path):
    cache = ResultCache(root=tmp_path, salt="test")
    spec = RunSpec.create("mcf", scale="tiny")
    path = cache.put(spec, {"cycles": 123})
    lock = path.with_name(path.name + ".lock")
    assert lock.exists(), "put() must leave its advisory lock file"
    assert cache.get(spec)["stats"] == {"cycles": 123}
    cache.clear()
    assert not path.exists() and not lock.exists()


def test_cache_put_leaves_no_temp_files(tmp_path):
    cache = ResultCache(root=tmp_path, salt="test")
    spec = RunSpec.create("mcf", scale="tiny")
    cache.put(spec, {"cycles": 1})
    leftovers = [p for p in (tmp_path / "test").iterdir()
                 if ".tmp." in p.name]
    assert leftovers == []
