"""Golden regression tests: the whole pipeline is deterministic.

Workload construction, profiling, adaptation and simulation involve no
wall-clock or unseeded randomness, so the tiny-scale end-to-end numbers
are exactly reproducible.  ``golden_tiny.json`` pins them; any change to
these values is a behavioural change that must be reviewed (and the file
regenerated deliberately — see the module-level `regenerate()` helper).
"""

import json
import os

import pytest

from repro import (
    PAPER_ORDER,
    SSPPostPassTool,
    collect_profile,
    make_workload,
    simulate,
)

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_tiny.json")


def compute(name: str) -> dict:
    w = make_workload(name, "tiny")
    prog = w.build_program()
    profile = collect_profile(prog, w.build_heap)
    result = SSPPostPassTool().adapt(prog, profile)
    ssp = simulate(result.program, w.build_heap(), "inorder")
    row = result.table2_row()
    return {
        "baseline_cycles": profile.baseline_cycles,
        "ssp_cycles": ssp.cycles,
        "spawns": ssp.spawns,
        "slices": row["slices"],
        "avg_size": row["avg_size"],
        "avg_live_ins": row["avg_live_ins"],
        "delinquent_count": len(result.delinquent_uids),
        "expected_output": w.expected_output(w.layout),
    }


def regenerate() -> None:  # pragma: no cover - manual utility
    golden = {name: compute(name) for name in PAPER_ORDER}
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(golden, handle, indent=2, sort_keys=True)


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.mark.parametrize("name", PAPER_ORDER)
def test_end_to_end_deterministic(name, golden):
    assert compute(name) == golden[name], (
        f"{name}: end-to-end numbers changed — if intentional, regenerate "
        "tests/golden_tiny.json via tests.test_golden.regenerate()")


if __name__ == "__main__":  # pragma: no cover
    regenerate()
    print(f"regenerated {GOLDEN_PATH}")
