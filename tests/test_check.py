"""Tests for the repro.check correctness subsystem.

Covers the binary linter (synthetic violations of every rule family plus
clean bills for all seven workloads), the cross-model differential oracle
(with and without runaway-slice budgets), the pipeline fuzzer, and the
``check`` CLI subcommand.
"""

import pytest

from repro.check.fuzz import FuzzWorkload, run_case, run_fuzz
from repro.check.lint import lint_program
from repro.check.oracle import (
    _inserted_instructions,
    count_inserted_triggers,
    run_oracle,
)
from repro.isa import FunctionBuilder, Program
from repro.isa.instructions import Instruction
from repro.runner.worker import WorkloadArtifacts
from repro.tool.cli import main
from repro.workloads import PAPER_ORDER


def _base_program():
    """A list-walk kernel with one nop trigger slot; returns the program
    and the uid of its delinquent (chase) load."""
    prog = Program(entry="main")
    fb = FunctionBuilder(prog.add_function("main"))
    fb.mov_imm(4096, dest="r50")
    fb.nop()
    fb.label("loop")
    fb.load("r50", 8, dest="r51")
    fb.load("r50", 0, dest="r50")
    p = fb.cmp("ne", "r50", imm=0)
    fb.br_cond(p, "loop")
    o = fb.mov_imm(8192)
    fb.store(o, "r51")
    fb.halt()
    func = prog.function("main")
    chase = func.block("loop").instrs[1]
    assert chase.op == "ld"
    return prog, chase.uid


def _adapt(prog, delinquent_uid, *, live_in="r50", trigger_index=1,
           slice_ends_in_kill=True, spawn_target=".ssp_slice1",
           stub_slots=(0,), slice_slot=0):
    """Hand-build a minimally adapted clone (stub + slice + one trigger)."""
    adapted = prog.clone()
    func = adapted.functions["main"]
    entry = func.blocks[0]
    entry.instrs[trigger_index] = Instruction(op="chk.c",
                                              target=".ssp_stub1")
    stub = func.add_block(".ssp_stub1")
    for slot in stub_slots:
        stub.append(Instruction(op="lib.st", srcs=(live_in,), imm=slot))
    stub.append(Instruction(op="spawn", target=spawn_target))
    stub.append(Instruction(op="rfi"))
    sl = func.add_block(".ssp_slice1")
    sl.append(Instruction(op="lib.ld", dest="r40", imm=slice_slot))
    lf = Instruction(op="lfetch", srcs=("r40",), imm=8)
    sl.append(lf)
    if slice_ends_in_kill:
        sl.append(Instruction(op="kill"))
    adapted.prefetch_sources[lf.uid] = delinquent_uid
    return adapted


def _rules(violations):
    return {v.rule for v in violations}


class TestLintSynthetic:
    def test_well_formed_adaptation_is_clean(self):
        prog, uid = _base_program()
        assert lint_program(prog, _adapt(prog, uid)) == []

    def test_unadapted_program_is_clean(self):
        prog, _ = _base_program()
        assert lint_program(prog, prog.clone()) == []

    def test_spawn_to_non_slice_label(self):
        prog, uid = _base_program()
        adapted = _adapt(prog, uid, spawn_target="loop")
        assert "cfi.spawn-target" in _rules(lint_program(prog, adapted))

    def test_slice_without_kill_falls_through(self):
        prog, uid = _base_program()
        adapted = _adapt(prog, uid, slice_ends_in_kill=False)
        assert "cfi.slice-termination" in _rules(
            lint_program(prog, adapted))

    def test_slice_branch_escaping_region(self):
        prog, uid = _base_program()
        adapted = _adapt(prog, uid)
        sl = adapted.functions["main"].block(".ssp_slice1")
        sl.instrs.insert(1, Instruction(op="br.cond", pred="p0",
                                        target="loop"))
        assert "cfi.slice-escape" in _rules(lint_program(prog, adapted))

    def test_main_code_falling_into_appended_block(self):
        prog, uid = _base_program()
        adapted = _adapt(prog, uid)
        func = adapted.functions["main"]
        # Drop the halt: the last main block now falls into the stub.
        for block in func.blocks:
            block.instrs = [i for i in block.instrs if i.op != "halt"]
        assert "cfi.fallthrough" in _rules(lint_program(prog, adapted))

    def test_store_in_slice(self):
        prog, uid = _base_program()
        adapted = _adapt(prog, uid)
        sl = adapted.functions["main"].block(".ssp_slice1")
        sl.instrs.insert(1, Instruction(op="st", srcs=("r40", "r40")))
        assert "cfi.spec-store" in _rules(lint_program(prog, adapted))

    def test_uncovered_live_in_slot(self):
        prog, uid = _base_program()
        adapted = _adapt(prog, uid, slice_slot=3)  # stub only writes 0
        assert "regs.live-in-coverage" in _rules(
            lint_program(prog, adapted))

    def test_stub_clobbering_live_register(self):
        prog, uid = _base_program()
        adapted = _adapt(prog, uid)
        stub = adapted.functions["main"].block(".ssp_stub1")
        # r50 holds the list cursor, live across the trigger.
        stub.instrs.insert(0, Instruction(op="mov", dest="r50", imm=0))
        assert "regs.stub-clobber" in _rules(lint_program(prog, adapted))

    def test_dropped_main_instruction(self):
        prog, uid = _base_program()
        adapted = _adapt(prog, uid)
        loop = adapted.functions["main"].block("loop")
        del loop.instrs[0]  # drop the value load
        assert "trig.main-code-preserved" in _rules(
            lint_program(prog, adapted))

    def test_foreign_instruction_in_main_code(self):
        prog, uid = _base_program()
        adapted = _adapt(prog, uid)
        loop = adapted.functions["main"].block("loop")
        loop.instrs.insert(0, Instruction(op="mov", dest="r60", imm=1))
        assert "trig.main-code-preserved" in _rules(
            lint_program(prog, adapted))

    def test_trigger_after_delinquent_load(self):
        prog, uid = _base_program()
        # Place the chk.c in the loop block *after* the chase load.
        adapted = prog.clone()
        func = adapted.functions["main"]
        loop = func.block("loop")
        loop.instrs.insert(2, Instruction(op="chk.c",
                                          target=".ssp_stub1"))
        stub = func.add_block(".ssp_stub1")
        stub.append(Instruction(op="lib.st", srcs=("r50",), imm=0))
        stub.append(Instruction(op="spawn", target=".ssp_slice1"))
        stub.append(Instruction(op="rfi"))
        sl = func.add_block(".ssp_slice1")
        sl.append(Instruction(op="lib.ld", dest="r40", imm=0))
        lf = Instruction(op="lfetch", srcs=("r40",), imm=8)
        sl.append(lf)
        sl.append(Instruction(op="kill"))
        adapted.prefetch_sources[lf.uid] = uid
        rules = _rules(lint_program(prog, adapted))
        assert "trig.covers-load" in rules

    def test_double_trigger_on_one_path(self):
        prog, uid = _base_program()
        adapted = _adapt(prog, uid)
        entry = adapted.functions["main"].blocks[0]
        entry.instrs.insert(0, Instruction(op="chk.c",
                                           target=".ssp_stub1"))
        assert "trig.double-trigger" in _rules(lint_program(prog, adapted))


class TestLintWorkloads:
    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_adapted_workload_is_clean(self, name):
        artifacts = WorkloadArtifacts(name, "tiny")
        result = artifacts.tool_result
        assert result.adapted is not None
        violations = lint_program(artifacts.program,
                                  result.adapted.program)
        assert violations == [], "\n".join(str(v) for v in violations)


class TestOracle:
    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_parity_all_workloads(self, name):
        result = run_oracle(name, "tiny")
        assert result.ok, result.summary()
        # All engines agree on net retired main-thread instructions.
        assert len(set(result.retired.values())) == 1, result.retired

    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_parity_with_spec_budgets(self, name):
        result = run_oracle(name, "tiny", budgets=True)
        assert result.ok, result.summary()
        budget_tags = [t for t in result.retired if t.endswith("+budgets")]
        assert budget_tags, "budget variants did not run"

    def test_inserted_instruction_detection(self):
        prog, uid = _base_program()
        adapted = _adapt(prog, uid)  # chk.c replaced the nop
        assert _inserted_instructions(prog, adapted) == 0
        loop = adapted.functions["main"].block("loop")
        loop.instrs.insert(0, Instruction(op="chk.c",
                                          target=".ssp_stub1"))
        assert _inserted_instructions(prog, adapted) == 1
        assert count_inserted_triggers(adapted) == 2


class TestFuzz:
    def test_fuzz_smoke_clean(self):
        report = run_fuzz(8)
        assert report.ok, report.summary()
        assert len(report.cases) == 8

    def test_case_is_deterministic(self):
        a = run_case(20020630)
        b = run_case(20020630)
        assert a.ok == b.ok
        assert a.stages == b.stages
        assert [d.message for d in a.violations] == \
            [d.message for d in b.violations]

    def test_fuzz_workload_replays_layout(self):
        wl = FuzzWorkload(7)
        h1 = wl.build_heap()
        h2 = wl.build_heap()
        assert h1.diff(h2) == []

    def test_fuzz_program_computes_expected(self):
        from repro.isa.interp import FunctionalInterpreter
        wl = FuzzWorkload(11)
        heap = wl.build_heap()
        FunctionalInterpreter(wl.build_program(), heap).run()
        wl.check_output(heap)


class TestCheckCLI:
    def test_check_single_workload(self, capsys):
        assert main(["check", "mst"]) == 0
        out = capsys.readouterr().out
        assert "mst" in out
        assert "check: ok" in out

    def test_check_with_fuzz(self, capsys):
        assert main(["check", "mst", "--fuzz", "2"]) == 0
        out = capsys.readouterr().out
        assert "fuzz: 2 programs" in out

    def test_check_budgets(self, capsys):
        assert main(["check", "health", "--budgets"]) == 0
        out = capsys.readouterr().out
        assert "0 failure(s)" in out
